package repro

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/testutil"
)

// rawLE32 serializes a field in the raw little-endian float32 layout
// CompressStream32 reads and DecompressStream32 writes.
func rawLE32(data []float32) []byte {
	raw := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return raw
}

func fromLE32(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

func widen32(data []float32) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = float64(v)
	}
	return out
}

// TestStream32RoundTrip pushes float32 fields through CompressStream32
// and back through both decoders: DecompressStream32 (float32 out, the
// mirror path) and DecompressStream (float64 out, proving the container
// is the ordinary 0xC8 format). The point-wise relative bound holds on
// the widened values; the float32 writer adds at most one 2⁻²⁴ rounding
// step on top.
func TestStream32RoundTrip(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields := []struct {
		name string
		dims []int
	}{
		{"1d", []int{500}},
		{"2d", []int{20, 30}},
	}
	const rel = 1e-3
	// rel plus the float64→float32 narrowing step (and slack for the
	// compounding), still far above float32's 2⁻²⁴ ≈ 6e-8 resolution.
	const rel32 = rel + 1e-6
	for _, fc := range fields {
		n := 1
		for _, d := range fc.dims {
			n *= d
		}
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(40*math.Sin(float64(i)/7) + 60)
		}
		raw := rawLE32(data)
		orig := widen32(data)
		for _, algo := range RelativeAlgorithms() {
			var comp bytes.Buffer
			st, err := CompressStream32(bytes.NewReader(raw), &comp, fc.dims, rel, algo,
				&StreamOptions{Workers: 2, ChunkRows: (fc.dims[0] + 2) / 3})
			if err != nil {
				t.Fatalf("%s %v: compress32: %v", fc.name, algo, err)
			}
			if st.BytesIn != int64(len(raw)) {
				t.Errorf("%s %v: BytesIn %d want %d", fc.name, algo, st.BytesIn, len(raw))
			}

			var dec32 bytes.Buffer
			dst, err := DecompressStream32(bytes.NewReader(comp.Bytes()), &dec32)
			if err != nil {
				t.Fatalf("%s %v: decompress32: %v", fc.name, algo, err)
			}
			if dst.Chunks != st.Chunks {
				t.Errorf("%s %v: decoded %d chunks, encoded %d", fc.name, algo, dst.Chunks, st.Chunks)
			}
			if dec32.Len() != len(raw) {
				t.Fatalf("%s %v: float32 output %d bytes, want %d", fc.name, algo, dec32.Len(), len(raw))
			}
			testutil.CheckPWR(t, orig, widen32(fromLE32(dec32.Bytes())), rel32)

			// The same container must decode on the float64 path, where
			// the stream's own bound applies with no narrowing step.
			var dec64 bytes.Buffer
			if _, err := DecompressStream(bytes.NewReader(comp.Bytes()), &dec64); err != nil {
				t.Fatalf("%s %v: decompress (float64 path): %v", fc.name, algo, err)
			}
			testutil.CheckPWR(t, orig, fromLE(dec64.Bytes()), rel)
		}
	}
}

// TestStream32MatchesWidenedStream verifies the mirroring claim
// bit-exactly: CompressStream32 of float32 input produces the same
// container bytes as CompressStream of the pre-widened field under the
// same chunking, because widening float32→float64 is exact.
func TestStream32MatchesWidenedStream(t *testing.T) {
	defer testutil.NoLeak(t)()
	dims := []int{18, 11}
	data := make([]float32, 18*11)
	for i := range data {
		data[i] = float32(math.Exp(float64(i%37)/11) - 3)
	}
	opts := &StreamOptions{Workers: 1, ChunkRows: 5}
	const rel = 2e-4
	for _, algo := range RelativeAlgorithms() {
		var from32, from64 bytes.Buffer
		if _, err := CompressStream32(bytes.NewReader(rawLE32(data)), &from32, dims, rel, algo, opts); err != nil {
			t.Fatalf("%v: compress32: %v", algo, err)
		}
		if _, err := CompressStream(bytes.NewReader(rawLE(widen32(data))), &from64, dims, rel, algo, opts); err != nil {
			t.Fatalf("%v: compress: %v", algo, err)
		}
		if !bytes.Equal(from32.Bytes(), from64.Bytes()) {
			t.Errorf("%v: CompressStream32 container differs from CompressStream of the widened field", algo)
		}
	}
}

// TestStream32ShortInput checks the float32 reader's element accounting:
// a truncated source must error out, not hang or misframe.
func TestStream32ShortInput(t *testing.T) {
	defer testutil.NoLeak(t)()
	dims := []int{64}
	data := make([]float32, 64)
	for i := range data {
		data[i] = float32(i + 1)
	}
	raw := rawLE32(data)
	var comp bytes.Buffer
	_, err := CompressStream32(bytes.NewReader(raw[:len(raw)-5]), &comp, dims, 1e-3, SZT, nil)
	if err == nil {
		t.Fatal("CompressStream32 accepted a truncated float32 source")
	}
}
