package repro

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/testutil"
)

// TestStreamAPIEquivalence proves the deprecated positional entry
// points are pure wrappers: for every legacy variant, the container (or
// decoded output) is byte-identical to the functional-options core
// called with the translated options.
func TestStreamAPIEquivalence(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(12, 21)[0]
	raw := rawLE(f.Data)
	raw32 := make([]byte, 0, len(f.Data)*4)
	for _, v := range f.Data {
		raw32 = rawLE32Append(raw32, float32(v))
	}
	ctx := context.Background()
	legacy := &StreamOptions{Workers: 2, ChunkRows: 3, ParityK: 2, VerifyOnWrite: true}
	shared := []StreamOption{WithWorkers(2), WithChunkRows(3), WithParity(2), WithVerifyOnWrite()}

	newStream := func(f32 bool, extra ...StreamOption) []byte {
		var w bytes.Buffer
		opts := append(append([]StreamOption{}, shared...), extra...)
		src := raw
		if f32 {
			src = raw32
			opts = append(opts, WithFloat32())
		}
		if _, err := CompressStreamOpts(bytes.NewReader(src), &w, f.Dims, 1e-3, SZT, opts...); err != nil {
			t.Fatal(err)
		}
		return w.Bytes()
	}
	want := newStream(false)
	want32 := newStream(true)
	if !bytes.Equal(want, want32) {
		t.Fatal("float32 path is not width-independent")
	}

	compressCases := []struct {
		name string
		run  func() ([]byte, error)
	}{
		{"CompressStream", func() ([]byte, error) {
			var w bytes.Buffer
			_, err := CompressStream(bytes.NewReader(raw), &w, f.Dims, 1e-3, SZT, legacy)
			return w.Bytes(), err
		}},
		{"CompressStreamCtx", func() ([]byte, error) {
			var w bytes.Buffer
			_, err := CompressStreamCtx(ctx, bytes.NewReader(raw), &w, f.Dims, 1e-3, SZT, legacy)
			return w.Bytes(), err
		}},
		{"CompressStream32", func() ([]byte, error) {
			var w bytes.Buffer
			_, err := CompressStream32(bytes.NewReader(raw32), &w, f.Dims, 1e-3, SZT, legacy)
			return w.Bytes(), err
		}},
		{"CompressStream32Ctx", func() ([]byte, error) {
			var w bytes.Buffer
			_, err := CompressStream32Ctx(ctx, bytes.NewReader(raw32), &w, f.Dims, 1e-3, SZT, legacy)
			return w.Bytes(), err
		}},
	}
	for _, tc := range compressCases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s output differs from CompressStreamOpts (%d vs %d bytes)", tc.name, len(got), len(want))
			}
		})
	}

	// Decompress wrappers against the options core.
	var wantOut bytes.Buffer
	lim := &DecodeLimits{MaxElements: 1 << 20, MaxChunkBytes: 1 << 20}
	if _, err := DecompressStreamOpts(bytes.NewReader(want), &wantOut, WithLimits(lim)); err != nil {
		t.Fatal(err)
	}
	decompressCases := []struct {
		name string
		run  func() ([]byte, error)
	}{
		{"DecompressStream", func() ([]byte, error) {
			var w bytes.Buffer
			_, err := DecompressStream(bytes.NewReader(want), &w)
			return w.Bytes(), err
		}},
		{"DecompressStreamCtx", func() ([]byte, error) {
			var w bytes.Buffer
			_, err := DecompressStreamCtx(ctx, bytes.NewReader(want), &w, lim)
			return w.Bytes(), err
		}},
	}
	for _, tc := range decompressCases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantOut.Bytes()) {
				t.Errorf("%s output differs from DecompressStreamOpts", tc.name)
			}
		})
	}
	var out32 bytes.Buffer
	if _, err := DecompressStream32(bytes.NewReader(want), &out32); err != nil {
		t.Fatal(err)
	}
	var out32ctx bytes.Buffer
	if _, err := DecompressStream32Ctx(ctx, bytes.NewReader(want), &out32ctx, lim); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out32.Bytes(), out32ctx.Bytes()) || len(out32.Bytes()) != len(f.Data)*4 {
		t.Error("32-bit decompress wrappers disagree")
	}

	// Parallel wrappers.
	popts := &ParallelOptions{Workers: 2, Chunks: 3, Verify: true, Ctx: ctx}
	oldPar, err := CompressParallel(f.Data, f.Dims, 1e-3, SZT, popts)
	if err != nil {
		t.Fatal(err)
	}
	newPar, err := CompressParallelOpts(f.Data, f.Dims, 1e-3, SZT,
		WithWorkers(2), WithChunks(3), WithVerifyOnWrite(), WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldPar, newPar) {
		t.Error("CompressParallel output differs from CompressParallelOpts")
	}
	oldDec, _, err := DecompressParallel(oldPar, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctxDec, _, err := DecompressParallelCtx(ctx, oldPar, 2, lim)
	if err != nil {
		t.Fatal(err)
	}
	newDec, _, err := DecompressParallelOpts(oldPar, WithWorkers(2), WithLimits(lim))
	if err != nil {
		t.Fatal(err)
	}
	for i := range oldDec {
		if oldDec[i] != newDec[i] || ctxDec[i] != newDec[i] {
			t.Fatalf("parallel decode mismatch at %d", i)
		}
	}
}

// rawLE32Append appends one float32 in little-endian raw layout.
func rawLE32Append(dst []byte, v float32) []byte {
	bits := math.Float32bits(v)
	return append(dst, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
}

// TestBudgetDerivation pins the WithMemoryBudget arithmetic:
// budget ≥ chunkRows × rowStride × (8×(workers+2) + elemSize).
func TestBudgetDerivation(t *testing.T) {
	t.Run("chunkRows", func(t *testing.T) {
		// 1 MiB budget, 1024-float rows, float64 I/O, 4 workers:
		// perRow = 1024 × (8×6 + 8) = 57344 → 18 rows.
		if got := budgetChunkRows(1<<20, 1024, 8, 4); got != 18 {
			t.Errorf("budgetChunkRows = %d, want 18", got)
		}
		// One row does not fit: 0 signals "shed workers".
		if got := budgetChunkRows(1<<10, 1024, 8, 4); got != 0 {
			t.Errorf("budgetChunkRows under-row = %d, want 0", got)
		}
		// A huge budget still respects the chunk-elems ceiling.
		if got := budgetChunkRows(1<<62, 1024, 8, 1); int64(got)*1024 > budgetMaxChunkElems {
			t.Errorf("budgetChunkRows = %d rows exceeds the chunk-elems cap", got)
		}
	})
	t.Run("workers", func(t *testing.T) {
		// chunkElems 4096 float64: per = 32768, fixed = 32768+65536.
		// budget 1 MiB → (1048576-98304)/32768 = 29 → clamped to maxW.
		if got := budgetWorkersFor(1<<20, 4096, 8, 8); got != 8 {
			t.Errorf("budgetWorkersFor = %d, want clamp to 8", got)
		}
		if got := budgetWorkersFor(1<<20, 4096, 8, 64); got != 29 {
			t.Errorf("budgetWorkersFor = %d, want 29", got)
		}
		// Floor of one worker however tight the budget.
		if got := budgetWorkersFor(1, 4096, 8, 8); got != 1 {
			t.Errorf("budgetWorkersFor floor = %d, want 1", got)
		}
	})
	t.Run("tune", func(t *testing.T) {
		// Both knobs unset: prefer full workers, shrink rows.
		cfg := &StreamConfig{MemoryBudget: 1 << 20}
		cr, w := tuneCompressBudget(cfg, 1024, 8, 4)
		if w != 4 || cr != 18 {
			t.Errorf("tune(unset) = (%d rows, %d workers), want (18, 4)", cr, w)
		}
		// Budget below one row at any width: floor (1, 1).
		cfg = &StreamConfig{MemoryBudget: 16}
		if cr, w = tuneCompressBudget(cfg, 1024, 8, 4); cr != 1 || w != 1 {
			t.Errorf("tune(tiny) = (%d, %d), want (1, 1)", cr, w)
		}
		// Explicit chunk rows: budget sizes workers only.
		cfg = &StreamConfig{MemoryBudget: 1 << 20, ChunkRows: 4}
		if cr, w = tuneCompressBudget(cfg, 1024, 8, 64); cr != 4 || w != 29 {
			t.Errorf("tune(rows=4) = (%d, %d), want (4, 29)", cr, w)
		}
		// Explicit workers: budget sizes rows only.
		cfg = &StreamConfig{MemoryBudget: 1 << 20, Workers: 4}
		if cr, w = tuneCompressBudget(cfg, 1024, 8, 4); cr != 18 || w != 4 {
			t.Errorf("tune(workers=4) = (%d, %d), want (18, 4)", cr, w)
		}
		// Both explicit: the budget defers entirely.
		cfg = &StreamConfig{MemoryBudget: 1 << 10, ChunkRows: 7, Workers: 3}
		if cr, w = tuneCompressBudget(cfg, 1024, 8, 3); cr != 7 || w != 3 {
			t.Errorf("tune(explicit) = (%d, %d), want (7, 3)", cr, w)
		}
		// No budget: passthrough.
		cfg = &StreamConfig{ChunkRows: 5}
		if cr, w = tuneCompressBudget(cfg, 1024, 8, 2); cr != 5 || w != 2 {
			t.Errorf("tune(no budget) = (%d, %d), want (5, 2)", cr, w)
		}
	})
}

// TestMemoryBudgetErrors pins the typed rejection of negative budgets
// on both pipeline directions.
func TestMemoryBudgetErrors(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(8, 2)[0]
	var w bytes.Buffer
	if _, err := CompressStreamOpts(bytes.NewReader(rawLE(f.Data)), &w, f.Dims, 1e-3, SZT, WithMemoryBudget(-1)); err == nil {
		t.Error("negative budget accepted on compress")
	}
	w.Reset()
	if _, err := CompressStreamOpts(bytes.NewReader(rawLE(f.Data)), &w, f.Dims, 1e-3, SZT); err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressStreamOpts(bytes.NewReader(w.Bytes()), &bytes.Buffer{}, WithMemoryBudget(-1)); err == nil {
		t.Error("negative budget accepted on decompress")
	}
}

// TestDefaultChunkRowsRespectsMaxChunkBytes covers the fixed sizing
// rule: a container written under DecodeLimits L must decode under the
// same L, so the default chunk geometry caps raw chunk bytes at
// L.MaxChunkBytes.
func TestDefaultChunkRowsRespectsMaxChunkBytes(t *testing.T) {
	defer testutil.NoLeak(t)()
	// Unit: 64 KiB cap → 8192 elems → 8 rows of 1024.
	if got := defaultChunkRows(1000, 1024, 64<<10); got != 8 {
		t.Errorf("defaultChunkRows(cap 64Ki) = %d, want 8", got)
	}
	// No cap: the 256Ki-element target.
	if got := defaultChunkRows(1000, 1024, 0); got != 256 {
		t.Errorf("defaultChunkRows(no cap) = %d, want 256", got)
	}
	// Floor of one row even when a row exceeds the cap.
	if got := defaultChunkRows(1000, 1024, 8); got != 1 {
		t.Errorf("defaultChunkRows(tiny cap) = %d, want 1", got)
	}

	// Integration: the same limits that guided the write accept the
	// container on read. 512 rows × 256 floats = 1 MiB of raw data with
	// a 16 KiB chunk cap would have overflowed the old 256Ki-element
	// default (2 MiB chunks).
	f := make([]float64, 512*256)
	for i := range f {
		f[i] = 40*math.Sin(float64(i)/23) + 90
	}
	lim := &DecodeLimits{MaxElements: 1 << 20, MaxChunkBytes: 16 << 10}
	var w bytes.Buffer
	if _, err := CompressStreamOpts(bytes.NewReader(rawLE(f)), &w, []int{512, 256}, 1e-3, SZT, WithLimits(lim)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressStreamOpts(bytes.NewReader(w.Bytes()), &bytes.Buffer{}, WithLimits(lim)); err != nil {
		t.Fatalf("round trip under the writing limits: %v", err)
	}
}

// TestConfigReuseIsSafe guards the resolve step against aliasing: the
// same option slice resolved twice (an ArchiveStreamWriter reusing its
// defaults across AddField calls) must not accumulate state.
func TestConfigReuseIsSafe(t *testing.T) {
	defer testutil.NoLeak(t)()
	opts := []StreamOption{WithChunkRows(1 << 20), WithMemoryBudget(1 << 20)}
	f := datagen.NYX(8, 9)[0]
	for i := 0; i < 2; i++ {
		var w bytes.Buffer
		if _, err := CompressStreamOpts(bytes.NewReader(rawLE(f.Data)), &w, f.Dims, 1e-3, SZT, opts...); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
		cfg := resolveStreamConfig(opts)
		if cfg.ChunkRows != 1<<20 {
			t.Fatalf("pass %d mutated the resolved ChunkRows to %d", i, cfg.ChunkRows)
		}
	}
}

// TestNilOptionTolerated pins resolveStreamConfig's contract that nil
// entries (conditional wrapper slices) are skipped.
func TestNilOptionTolerated(t *testing.T) {
	cfg := resolveStreamConfig([]StreamOption{nil, WithWorkers(3), nil})
	if cfg.Workers != 3 || cfg.Ctx == nil {
		t.Fatalf("resolve with nils: %+v", cfg)
	}
}

// TestParityErrorPreserved ensures the legacy struct path still rejects
// a negative ParityK (the translation must not silently drop it).
func TestParityErrorPreserved(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(8, 4)[0]
	var w bytes.Buffer
	_, err := CompressStream(bytes.NewReader(rawLE(f.Data)), &w, f.Dims, 1e-3, SZT, &StreamOptions{ParityK: -1})
	if err == nil {
		t.Fatal("negative ParityK accepted through the legacy wrapper")
	}
	var w2 bytes.Buffer
	_, err2 := CompressStreamOpts(bytes.NewReader(rawLE(f.Data)), &w2, f.Dims, 1e-3, SZT, WithParity(-1))
	if err2 == nil {
		t.Fatal("negative ParityK accepted through the options core")
	}
	if err.Error() != err2.Error() {
		t.Errorf("wrapper and core disagree on the ParityK error: %q vs %q", err, err2)
	}
}
