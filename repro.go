// Package repro is a Go reproduction of "An Efficient Transformation Scheme
// for Lossy Data Compression with Point-wise Relative Error Bound" (Liang,
// Di, Tao, Chen, Cappello — IEEE CLUSTER 2018).
//
// It provides error-bounded lossy compression of floating-point scientific
// data under either an absolute error bound or a point-wise relative error
// bound. The headline algorithms are SZT and ZFPT: the paper's logarithmic
// transformation scheme layered over re-implementations of the SZ
// (prediction-based) and ZFP (transform-based) absolute-error compressors.
// The four baselines the paper evaluates against — SZ's block-wise PWR
// mode, ZFP's precision mode, FPZIP and ISABELA — are implemented too, so
// every comparison in the paper's evaluation can be regenerated.
//
// Quick start:
//
//	buf, err := repro.Compress(data, []int{n}, 1e-3, repro.SZT, nil)
//	...
//	dec, dims, err := repro.Decompress(buf)
//
// Streams are self-describing: Decompress dispatches on the algorithm
// recorded in the container.
package repro

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/fpzip"
	"repro/internal/grid"
	"repro/internal/isabela"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// Algorithm selects a compressor.
type Algorithm byte

const (
	// SZT is the paper's primary solution: logarithmic transform + SZ.
	SZT Algorithm = iota + 1
	// ZFPT is the transform scheme over ZFP's fixed-accuracy mode.
	ZFPT
	// SZABS is plain SZ under an absolute error bound.
	SZABS
	// SZPWR is the block-wise point-wise-relative SZ baseline.
	SZPWR
	// ZFPACC is plain ZFP fixed-accuracy mode (absolute bound).
	ZFPACC
	// ZFPP is ZFP's fixed-precision mode (approximate relative control).
	ZFPP
	// FPZIP is the predictive coder with precision-derived relative bounds.
	FPZIP
	// ISABELA is the sort-and-spline baseline.
	ISABELA
	// ZFPRATE is ZFP's fixed-rate mode (exact bits/value, no error bound);
	// produced by CompressFixedRate.
	ZFPRATE
	// FPZIP32 is FPZIP's native float32 layout (1+8 sign/exponent bits, the
	// paper's -p 13/16/19 settings); produced by Compress32 with FPZIP.
	FPZIP32
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case SZT:
		return "SZ_T"
	case ZFPT:
		return "ZFP_T"
	case SZABS:
		return "SZ_ABS"
	case SZPWR:
		return "SZ_PWR"
	case ZFPACC:
		return "ZFP_ACC"
	case ZFPP:
		return "ZFP_P"
	case FPZIP:
		return "FPZIP"
	case ISABELA:
		return "ISABELA"
	case ZFPRATE:
		return "ZFP_RATE"
	case FPZIP32:
		return "FPZIP32"
	default:
		return fmt.Sprintf("Algorithm(%d)", byte(a))
	}
}

// RelativeAlgorithms lists the compressors that accept a point-wise
// relative bound (the paper's Table IV / Figure 2 competitors).
func RelativeAlgorithms() []Algorithm {
	return []Algorithm{ISABELA, FPZIP, SZPWR, SZT, ZFPP, ZFPT}
}

// LogBase selects the transform's logarithm base for SZT/ZFPT.
type LogBase int

const (
	// Base2 is the default and the paper's recommendation.
	Base2 LogBase = iota
	// BaseE uses natural logarithms (base study only).
	BaseE
	// Base10 uses decimal logarithms (base study only).
	Base10
)

func (b LogBase) core() core.Base {
	switch b {
	case BaseE:
		return core.BaseE
	case Base10:
		return core.Base10
	default:
		return core.Base2
	}
}

// Options tunes the compressors; the zero value (or nil) selects the
// defaults used in the paper's evaluation.
type Options struct {
	// Base is the log-transform base for SZT/ZFPT (default base 2).
	Base LogBase
	// Intervals is SZ's quantization interval count (default 65536).
	Intervals int
	// BlockSide is SZ_PWR's block edge length (default 8).
	BlockSide int
	// ZFPPrecision is the bit-plane count for ZFPP. When 0 it is derived
	// from the relative bound as ceil(log2(1/b_r)) + 10 (a practical
	// setting comparable to the paper's per-field tuned -p values).
	ZFPPrecision int
	// FPZIPPrecision overrides FPZIP's precision; when 0 it is derived
	// from the relative bound so the bound is guaranteed.
	FPZIPPrecision int
	// ISABELAWindow and ISABELACoeffs tune ISABELA (defaults 1024 / 30).
	ISABELAWindow, ISABELACoeffs int
	// DisableRoundoffGuard removes Lemma 2's round-off adjustment in the
	// transform scheme (ablation only).
	DisableRoundoffGuard bool
}

func (o *Options) szOpts() *sz.Options {
	if o == nil {
		return nil
	}
	return &sz.Options{Intervals: o.Intervals, BlockSide: o.BlockSide}
}

func (o *Options) coreOpts() *core.Options {
	if o == nil {
		return nil
	}
	return &core.Options{Base: o.Base.core(), DisableRoundoffGuard: o.DisableRoundoffGuard}
}

func (o *Options) isabelaOpts() *isabela.Options {
	if o == nil {
		return nil
	}
	return &isabela.Options{Window: o.ISABELAWindow, Coeffs: o.ISABELACoeffs}
}

// ErrNeedsAbsolute reports a relative bound passed to an
// absolute-bound-only algorithm (or vice versa). The decode-error
// sentinels (ErrCorrupted, ErrTruncated, ErrLimitExceeded,
// ErrUnsupportedFormat) live in errors.go.
var ErrNeedsAbsolute = errors.New("repro: algorithm takes an absolute bound; use CompressAbs")

const containerMagic = 0xC5

// Compress encodes data under the point-wise relative error bound relBound
// (in (0,1); e.g. 0.01 keeps every value within 1% of the original).
func Compress(data []float64, dims []int, relBound float64, algo Algorithm, opts *Options) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	var inner []byte
	var err error
	switch algo {
	case SZT:
		inner, err = core.Compress(data, dims, relBound, core.SZBackend{Opts: opts.szOpts()}, opts.coreOpts())
	case ZFPT:
		inner, err = core.Compress(data, dims, relBound, core.ZFPBackend{}, opts.coreOpts())
	case SZPWR:
		inner, err = sz.CompressPWR(data, dims, relBound, opts.szOpts())
	case ZFPP:
		p := 0
		if opts != nil {
			p = opts.ZFPPrecision
		}
		if p == 0 {
			p, err = zfpPrecisionFor(relBound)
			if err != nil {
				return nil, err
			}
		}
		inner, err = zfp.CompressPrecision(data, dims, p)
	case FPZIP:
		p := 0
		if opts != nil {
			p = opts.FPZIPPrecision
		}
		if p == 0 {
			p, err = fpzip.PrecisionForRelBound(relBound)
			if err != nil {
				return nil, err
			}
		}
		inner, err = fpzip.Compress(data, dims, p)
	case ISABELA:
		inner, err = isabela.Compress(data, dims, relBound, opts.isabelaOpts())
	case SZABS, ZFPACC:
		return nil, ErrNeedsAbsolute
	default:
		return nil, fmt.Errorf("repro: unknown algorithm %v", algo)
	}
	if err != nil {
		return nil, err
	}
	return wrap(algo, inner), nil
}

// CompressAbs encodes data under an absolute error bound using SZABS or
// ZFPACC.
func CompressAbs(data []float64, dims []int, absBound float64, algo Algorithm, opts *Options) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	var inner []byte
	var err error
	switch algo {
	case SZABS:
		inner, err = sz.CompressAbs(data, dims, absBound, opts.szOpts())
	case ZFPACC:
		inner, err = zfp.CompressAccuracy(data, dims, absBound)
	default:
		return nil, fmt.Errorf("repro: %v does not take an absolute bound", algo)
	}
	if err != nil {
		return nil, err
	}
	return wrap(algo, inner), nil
}

// zfpPrecisionFor mirrors the paper's per-bound ZFP_P parameter choice:
// enough planes that typical data lands near the requested relative error,
// without guaranteeing it (the mode's documented deficiency).
func zfpPrecisionFor(relBound float64) (int, error) {
	if !(relBound > 0) || relBound >= 1 {
		return 0, fmt.Errorf("repro: relative bound %v out of (0,1)", relBound)
	}
	p := int(math.Ceil(math.Log2(1/relBound))) + 10
	if p > 64 {
		p = 64
	}
	if p < 1 {
		p = 1
	}
	return p, nil
}

// CompressValueRange encodes data under a *value-range relative* bound:
// the absolute bound is ratio × (max − min) over the field. This is SZ's
// classic "REL" mode — a single global bound, unlike the point-wise
// relative bound the transform scheme provides. algo must be SZABS or
// ZFPACC. A constant field (range 0) is stored with a tiny absolute bound.
func CompressValueRange(data []float64, dims []int, ratio float64, algo Algorithm, opts *Options) ([]byte, error) {
	if !(ratio > 0) || ratio >= 1 {
		return nil, fmt.Errorf("repro: value-range ratio %v out of (0,1)", ratio)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	bound := ratio * (hi - lo)
	if !(bound > 0) {
		// Constant or empty range: any positive bound is exact enough.
		bound = math.SmallestNonzeroFloat64 * 1e16
		if hi > lo || !math.IsInf(lo, 1) {
			m := math.Max(math.Abs(lo), math.Abs(hi))
			if m > 0 {
				bound = m * 1e-15
			}
		}
	}
	return CompressAbs(data, dims, bound, algo, opts)
}

// CompressFixedRate encodes data at exactly bitsPerValue bits per value
// using ZFP's fixed-rate mode. No error bound is guaranteed; use it for
// fixed-budget storage or the rate-distortion sweeps of Figure 1.
func CompressFixedRate(data []float64, dims []int, bitsPerValue float64) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	inner, err := zfp.CompressRate(data, dims, bitsPerValue)
	if err != nil {
		return nil, err
	}
	return wrap(ZFPRATE, inner), nil
}

// wrap frames an inner stream as [magic | algo | crc32(inner) | inner].
// The checksum catches storage/transport corruption up front, before the
// per-algorithm parsers see the payload.
func wrap(algo Algorithm, inner []byte) []byte {
	out := make([]byte, 0, len(inner)+6)
	out = append(out, containerMagic, byte(algo))
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(inner))
	return append(out, inner...)
}

// Decompress decodes any stream produced by Compress or CompressAbs.
func Decompress(buf []byte) (_ []float64, _ []int, err error) {
	defer recoverDecode(&err)
	if len(buf) >= 1 && buf[0] != containerMagic {
		return nil, nil, fmt.Errorf("%w: leading byte 0x%02x", ErrUnsupportedFormat, buf[0])
	}
	if len(buf) < 6 {
		return nil, nil, fmt.Errorf("%w (plain container header)", ErrTruncated)
	}
	algo := Algorithm(buf[1])
	inner := buf[6:]
	if crc32.ChecksumIEEE(inner) != binary.BigEndian.Uint32(buf[2:6]) {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var data []float64
	var dims []int
	switch algo {
	case SZT, ZFPT:
		data, dims, err = core.Decompress(inner, core.DefaultResolve)
	case SZABS, SZPWR:
		data, dims, err = sz.Decompress(inner)
	case ZFPACC, ZFPP, ZFPRATE:
		data, dims, err = zfp.Decompress(inner)
	case FPZIP:
		data, dims, err = fpzip.Decompress(inner)
	case FPZIP32:
		var f32 []float32
		f32, dims, err = fpzip.Decompress32(inner)
		if err == nil {
			data = make([]float64, len(f32))
			for i, v := range f32 {
				data[i] = float64(v)
			}
		}
	case ISABELA:
		data, dims, err = isabela.Decompress(inner)
	default:
		return nil, nil, fmt.Errorf("%w: algorithm byte %d", ErrCorrupt, buf[1])
	}
	if err != nil {
		// The container CRC covers the payload but not the algo byte, so
		// a payload the named codec rejects means the container itself is
		// damaged (most often a flipped algorithm byte dispatching to the
		// wrong decoder).
		return nil, nil, fmt.Errorf("%w: %v payload: %w", ErrCorrupt, algo, err)
	}
	return data, dims, nil
}

// AlgorithmOf reports which algorithm produced the stream.
func AlgorithmOf(buf []byte) (Algorithm, error) {
	if len(buf) >= 1 && buf[0] != containerMagic {
		return 0, fmt.Errorf("%w: leading byte 0x%02x", ErrUnsupportedFormat, buf[0])
	}
	if len(buf) < 2 {
		return 0, fmt.Errorf("%w (plain container header)", ErrTruncated)
	}
	return Algorithm(buf[1]), nil
}

// Compress32 compresses float32 data. FPZIP uses its native float32
// layout (the paper's exact -p settings, and fewer mantissa bits to code);
// every other algorithm widens to float64 with unchanged bound semantics.
func Compress32(data []float32, dims []int, relBound float64, algo Algorithm, opts *Options) ([]byte, error) {
	if algo == FPZIP || algo == FPZIP32 {
		p := 0
		if opts != nil {
			p = opts.FPZIPPrecision
		}
		if p == 0 {
			var err error
			p, err = fpzip.PrecisionForRelBound32(relBound)
			if err != nil {
				return nil, err
			}
		}
		inner, err := fpzip.Compress32(data, dims, p)
		if err != nil {
			return nil, err
		}
		return wrap(FPZIP32, inner), nil
	}
	wide := make([]float64, len(data))
	for i, v := range data {
		wide[i] = float64(v)
	}
	return Compress(wide, dims, relBound, algo, opts)
}

// Decompress32 decodes into float32s.
func Decompress32(buf []byte) (_ []float32, _ []int, err error) {
	defer recoverDecode(&err)
	if algo, err := AlgorithmOf(buf); err == nil && algo == FPZIP32 {
		if len(buf) < 6 {
			return nil, nil, fmt.Errorf("%w (plain container header)", ErrTruncated)
		}
		inner := buf[6:]
		if crc32.ChecksumIEEE(inner) != binary.BigEndian.Uint32(buf[2:6]) {
			return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		f32, dims, err := fpzip.Decompress32(inner)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v payload: %w", ErrCorrupt, FPZIP32, err)
		}
		return f32, dims, nil
	}
	wide, dims, err := Decompress(buf)
	if err != nil {
		return nil, nil, err
	}
	out := make([]float32, len(wide))
	for i, v := range wide {
		out[i] = float32(v)
	}
	return out, dims, nil
}
