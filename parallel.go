package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitio"
	"repro/internal/grid"
)

// Parallel compression: the field is split into chunks along the slowest
// dimension and each chunk is compressed independently by a worker pool —
// the shared-memory analogue of the paper's file-per-process parallel
// evaluation. Prediction-based compressors lose a little ratio at chunk
// boundaries (each chunk restarts its predictor), which is the same
// trade-off MPI-rank-local compression makes on real systems.
//
// The worker pools pull chunk indices from an atomic counter rather than
// queueing goroutines behind a semaphore: exactly min(workers, chunks)
// goroutines run, each checks the pool's context between chunks, and
// cancellation stops the pool after at most the chunks already being
// processed.

const parallelMagic = 0xC6

// ErrBadChunking reports invalid parallel-compression parameters.
var ErrBadChunking = errors.New("repro: invalid chunking")

// ParallelOptions tunes the deprecated positional CompressParallel
// entry point.
//
// Deprecated: use the StreamOption functional options (WithWorkers,
// WithChunks, WithVerifyOnWrite, WithCompressorOptions, WithContext)
// with CompressParallelOpts. The struct is retained so existing callers
// keep compiling; it is translated into the same options internally, so
// output is bit-identical.
type ParallelOptions struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// Chunks is the number of slices along the slowest dimension
	// (default: Workers, clamped to the dimension's extent).
	Chunks int
	// Verify decode-verifies each compressed chunk against its source
	// slice before the container is assembled, exactly like
	// StreamOptions.VerifyOnWrite; a mismatch fails with a typed
	// ErrVerifyFailed.
	Verify bool
	// Options passes through per-chunk compressor options.
	Options *Options
	// Ctx, when non-nil, cancels the worker pool: compression stops
	// after the chunks already in flight and returns the context's
	// error.
	Ctx context.Context
}

// CompressParallelOpts compresses data under a point-wise relative
// bound using multiple cores. The stream interleaves independently
// decodable chunks and is decoded by DecompressParallelOpts (also in
// parallel). It consumes the shared StreamOption set: WithWorkers and
// WithChunks size the pool and the container layout, WithVerifyOnWrite
// decode-verifies each chunk before the container is assembled,
// WithCompressorOptions passes through per-chunk compressor options,
// and WithContext cancels the pool after at most the chunks already in
// flight.
func CompressParallelOpts(data []float64, dims []int, relBound float64, algo Algorithm, opts ...StreamOption) ([]byte, error) {
	return compressParallel(resolveStreamConfig(opts), data, dims, relBound, algo)
}

// CompressParallel compresses data into a parallel container.
//
// Deprecated: use CompressParallelOpts; this wrapper translates popts
// into the equivalent StreamOption values and delegates, so its output
// is bit-identical.
func CompressParallel(data []float64, dims []int, relBound float64, algo Algorithm, popts *ParallelOptions) ([]byte, error) {
	return CompressParallelOpts(data, dims, relBound, algo, popts.streamOptions()...)
}

// compressParallel is the pool behind the parallel compress entry
// points, driven by a resolved StreamConfig.
func compressParallel(cfg *StreamConfig, data []float64, dims []int, relBound float64, algo Algorithm) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	ctx := orDefault(cfg.Ctx)
	workers := cfg.defaultWorkers()
	chunks := cfg.Chunks
	verify := cfg.VerifyOnWrite
	opts := cfg.Compressor
	if chunks <= 0 {
		chunks = workers
	}
	if chunks > dims[0] {
		chunks = dims[0]
	}
	if chunks < 1 {
		chunks = 1
	}

	// Slice along dims[0]: chunk c covers rows [starts[c], starts[c+1]).
	starts := chunkStarts(dims[0], chunks)
	rowStride := len(data) / dims[0]

	type result struct {
		buf []byte
		err error
	}
	results := make([]result, chunks)
	runPool(ctx, workers, chunks, func(c int) {
		lo, hi := starts[c], starts[c+1]
		sub := data[lo*rowStride : hi*rowStride]
		subDims := append([]int{hi - lo}, dims[1:]...)
		buf, err := Compress(sub, subDims, relBound, algo, opts)
		if err == nil && verify {
			err = verifyChunk(buf, sub, subDims, relBound, algo)
		}
		results[c] = result{buf, err}
	})
	if err := ctx.Err(); err != nil {
		return nil, ctxCause(ctx)
	}
	for c := range results {
		if results[c].err != nil {
			return nil, fmt.Errorf("chunk %d: %w", c, results[c].err)
		}
	}

	// Container: magic | algo | rank | dims... | #chunks | chunk lengths | chunks.
	out := []byte{parallelMagic, byte(algo)}
	out = bitio.AppendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = bitio.AppendUvarint(out, uint64(chunks))
	for c := range results {
		out = bitio.AppendUvarint(out, uint64(len(results[c].buf)))
	}
	for c := range results {
		out = append(out, results[c].buf...)
	}
	return out, nil
}

// runPool runs fn(0..n-1) on min(workers, n) goroutines pulling indices
// from a shared counter. Workers observe ctx between indices, so
// cancellation stops the pool after the indices already claimed; the
// caller checks ctx after the pool drains.
func runPool(ctx context.Context, workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= n || ctx.Err() != nil {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

// DecompressParallelOpts decodes a CompressParallel container using the
// shared StreamOption set: WithWorkers sizes the pool (default
// GOMAXPROCS), WithLimits is enforced before any input-derived
// allocation or chunk decode, and WithContext cancels the pool after at
// most the chunks already in flight.
func DecompressParallelOpts(buf []byte, opts ...StreamOption) ([]float64, []int, error) {
	return decompressParallel(resolveStreamConfig(opts), buf)
}

// DecompressParallel decodes a CompressParallel stream using up to
// `workers` goroutines (0 = GOMAXPROCS).
//
// Deprecated: use DecompressParallelOpts with WithWorkers.
func DecompressParallel(buf []byte, workers int) ([]float64, []int, error) {
	return DecompressParallelOpts(buf, WithWorkers(workers))
}

// DecompressParallelCtx is DecompressParallel under a context and decode
// limits (nil = unlimited).
//
// Deprecated: use DecompressParallelOpts with WithContext, WithWorkers,
// and WithLimits.
func DecompressParallelCtx(ctx context.Context, buf []byte, workers int, limits *DecodeLimits) ([]float64, []int, error) {
	return DecompressParallelOpts(buf, WithContext(ctx), WithWorkers(workers), WithLimits(limits))
}

// decompressParallel is the decode pool behind the parallel decode
// entry points, driven by a resolved StreamConfig.
func decompressParallel(cfg *StreamConfig, buf []byte) (_ []float64, _ []int, err error) {
	defer recoverDecode(&err)
	ctx := orDefault(cfg.Ctx)
	limits := cfg.Limits
	workers := cfg.Workers
	if len(buf) < 2 {
		return nil, nil, fmt.Errorf("%w: %d-byte parallel container", ErrTruncated, len(buf))
	}
	if buf[0] != parallelMagic {
		return nil, nil, fmt.Errorf("%w: leading byte 0x%02x is not a parallel container", ErrUnsupportedFormat, buf[0])
	}
	off := 2
	rankU, k := bitio.Uvarint(buf[off:])
	if k == 0 || rankU == 0 || rankU > grid.MaxDims {
		return nil, nil, fmt.Errorf("%w: rank %d", ErrCorrupt, rankU)
	}
	off += k
	dims := make([]int, rankU)
	for i := range dims {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 || d == 0 || d > 1<<40 {
			return nil, nil, fmt.Errorf("%w: dimension %d", ErrCorrupt, d)
		}
		dims[i] = int(d)
		off += k
	}
	if err := grid.Validate(dims, -1); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := limits.checkElements(int64(grid.Size(dims))); err != nil {
		return nil, nil, err
	}
	chunksU, k := bitio.Uvarint(buf[off:])
	if k == 0 || chunksU == 0 || chunksU > uint64(dims[0]) {
		return nil, nil, fmt.Errorf("%w: chunk count %d", ErrCorrupt, chunksU)
	}
	off += k
	// Each chunk needs at least a one-byte length prefix, so a count
	// beyond the remaining bytes is structurally impossible — reject it
	// before sizing the length table off an attacker-declared count.
	if chunksU > uint64(len(buf)-off) {
		return nil, nil, fmt.Errorf("%w: %d chunks declared with %d bytes left", ErrCorrupt, chunksU, len(buf)-off)
	}
	chunks := int(chunksU)
	lengths := make([]int, chunks)
	total := 0
	for c := range lengths {
		l, k := bitio.Uvarint(buf[off:])
		if k == 0 || l > uint64(len(buf)) {
			return nil, nil, fmt.Errorf("%w: chunk %d length", ErrCorrupt, c)
		}
		if err := limits.checkChunkBytes(int64(l)); err != nil {
			return nil, nil, err
		}
		off += k
		lengths[c] = int(l)
		total += int(l)
	}
	if off+total > len(buf) {
		return nil, nil, fmt.Errorf("%w: chunk lengths overrun the container", ErrTruncated)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := grid.Size(dims)
	out := make([]float64, n)
	rowStride := n / dims[0]
	starts := chunkStarts(dims[0], chunks)

	chunkBufs := make([][]byte, chunks)
	for c := range chunkBufs {
		chunkBufs[c] = buf[off : off+lengths[c]]
		off += lengths[c]
	}

	errs := make([]error, chunks)
	runPool(ctx, workers, chunks, func(c int) {
		dec, subDims, err := Decompress(chunkBufs[c])
		if err != nil {
			errs[c] = err
			return
		}
		lo, hi := starts[c], starts[c+1]
		wantRows := hi - lo
		if len(subDims) != len(dims) || subDims[0] != wantRows || len(dec) != wantRows*rowStride {
			errs[c] = fmt.Errorf("%w: chunk decoded to shape %v, want %d rows of stride %d",
				ErrCorrupt, subDims, wantRows, rowStride)
			return
		}
		copy(out[lo*rowStride:hi*rowStride], dec)
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, ctxCause(ctx)
	}
	for c, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("chunk %d: %w", c, err)
		}
	}
	return out, dims, nil
}

// chunkStarts splits `rows` into `chunks` nearly equal ranges, returning
// chunks+1 boundaries.
func chunkStarts(rows, chunks int) []int {
	starts := make([]int, chunks+1)
	for c := 0; c <= chunks; c++ {
		starts[c] = rows * c / chunks
	}
	return starts
}

// IsParallelStream reports whether buf was produced by CompressParallel.
func IsParallelStream(buf []byte) bool {
	return len(buf) >= 2 && buf[0] == parallelMagic
}

// DecompressAny decodes a plain, parallel, or stream-container buffer.
func DecompressAny(buf []byte) ([]float64, []int, error) {
	return DecompressAnyLimits(buf, nil)
}

// DecompressAnyLimits is DecompressAny with decode limits (nil =
// unlimited) enforced on whichever container format the buffer carries.
func DecompressAnyLimits(buf []byte, limits *DecodeLimits) (_ []float64, _ []int, err error) {
	defer recoverDecode(&err)
	if IsParallelStream(buf) {
		return DecompressParallelCtx(context.Background(), buf, 0, limits)
	}
	if IsStreamContainer(buf) {
		return decompressStreamBuf(buf, limits)
	}
	data, dims, err := Decompress(buf)
	if err == nil {
		if lerr := limits.checkElements(int64(len(data))); lerr != nil {
			return nil, nil, lerr
		}
	}
	return data, dims, err
}
