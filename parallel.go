package repro

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bitio"
	"repro/internal/grid"
)

// Parallel compression: the field is split into chunks along the slowest
// dimension and each chunk is compressed independently by a worker pool —
// the shared-memory analogue of the paper's file-per-process parallel
// evaluation. Prediction-based compressors lose a little ratio at chunk
// boundaries (each chunk restarts its predictor), which is the same
// trade-off MPI-rank-local compression makes on real systems.

const parallelMagic = 0xC6

// ErrBadChunking reports invalid parallel-compression parameters.
var ErrBadChunking = errors.New("repro: invalid chunking")

// ParallelOptions tunes CompressParallel.
type ParallelOptions struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// Chunks is the number of slices along the slowest dimension
	// (default: Workers, clamped to the dimension's extent).
	Chunks int
	// Options passes through per-chunk compressor options.
	Options *Options
}

// CompressParallel compresses data under a point-wise relative bound using
// multiple cores. The stream interleaves independently decodable chunks
// and is decoded by DecompressParallel (also in parallel).
func CompressParallel(data []float64, dims []int, relBound float64, algo Algorithm, popts *ParallelOptions) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	chunks := 0
	var opts *Options
	if popts != nil {
		if popts.Workers > 0 {
			workers = popts.Workers
		}
		chunks = popts.Chunks
		opts = popts.Options
	}
	if chunks <= 0 {
		chunks = workers
	}
	if chunks > dims[0] {
		chunks = dims[0]
	}
	if chunks < 1 {
		chunks = 1
	}

	// Slice along dims[0]: chunk c covers rows [starts[c], starts[c+1]).
	starts := chunkStarts(dims[0], chunks)
	rowStride := len(data) / dims[0]

	type result struct {
		buf []byte
		err error
	}
	results := make([]result, chunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for c := 0; c < chunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			lo, hi := starts[c], starts[c+1]
			sub := data[lo*rowStride : hi*rowStride]
			subDims := append([]int{hi - lo}, dims[1:]...)
			buf, err := Compress(sub, subDims, relBound, algo, opts)
			results[c] = result{buf, err}
		}(c)
	}
	wg.Wait()
	for c := range results {
		if results[c].err != nil {
			return nil, fmt.Errorf("chunk %d: %w", c, results[c].err)
		}
	}

	// Container: magic | algo | rank | dims... | #chunks | chunk lengths | chunks.
	out := []byte{parallelMagic, byte(algo)}
	out = bitio.AppendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = bitio.AppendUvarint(out, uint64(chunks))
	for c := range results {
		out = bitio.AppendUvarint(out, uint64(len(results[c].buf)))
	}
	for c := range results {
		out = append(out, results[c].buf...)
	}
	return out, nil
}

// DecompressParallel decodes a CompressParallel stream using up to
// `workers` goroutines (0 = GOMAXPROCS).
func DecompressParallel(buf []byte, workers int) ([]float64, []int, error) {
	if len(buf) < 2 || buf[0] != parallelMagic {
		return nil, nil, ErrCorrupt
	}
	off := 2
	rankU, k := bitio.Uvarint(buf[off:])
	if k == 0 || rankU == 0 || rankU > grid.MaxDims {
		return nil, nil, ErrCorrupt
	}
	off += k
	dims := make([]int, rankU)
	for i := range dims {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 || d == 0 || d > 1<<40 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		off += k
	}
	if err := grid.Validate(dims, -1); err != nil {
		return nil, nil, ErrCorrupt
	}
	chunksU, k := bitio.Uvarint(buf[off:])
	if k == 0 || chunksU == 0 || chunksU > uint64(dims[0]) {
		return nil, nil, ErrCorrupt
	}
	off += k
	chunks := int(chunksU)
	lengths := make([]int, chunks)
	total := 0
	for c := range lengths {
		l, k := bitio.Uvarint(buf[off:])
		if k == 0 || l > uint64(len(buf)) {
			return nil, nil, ErrCorrupt
		}
		off += k
		lengths[c] = int(l)
		total += int(l)
	}
	if off+total > len(buf) {
		return nil, nil, ErrCorrupt
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := grid.Size(dims)
	out := make([]float64, n)
	rowStride := n / dims[0]
	starts := chunkStarts(dims[0], chunks)

	chunkBufs := make([][]byte, chunks)
	for c := range chunkBufs {
		chunkBufs[c] = buf[off : off+lengths[c]]
		off += lengths[c]
	}

	errs := make([]error, chunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for c := 0; c < chunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dec, subDims, err := Decompress(chunkBufs[c])
			if err != nil {
				errs[c] = err
				return
			}
			lo, hi := starts[c], starts[c+1]
			wantRows := hi - lo
			if len(subDims) != len(dims) || subDims[0] != wantRows || len(dec) != wantRows*rowStride {
				errs[c] = ErrCorrupt
				return
			}
			copy(out[lo*rowStride:hi*rowStride], dec)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("chunk %d: %w", c, err)
		}
	}
	return out, dims, nil
}

// chunkStarts splits `rows` into `chunks` nearly equal ranges, returning
// chunks+1 boundaries.
func chunkStarts(rows, chunks int) []int {
	starts := make([]int, chunks+1)
	for c := 0; c <= chunks; c++ {
		starts[c] = rows * c / chunks
	}
	return starts
}

// IsParallelStream reports whether buf was produced by CompressParallel.
func IsParallelStream(buf []byte) bool {
	return len(buf) >= 2 && buf[0] == parallelMagic
}

// DecompressAny decodes a plain, parallel, or stream-container buffer.
func DecompressAny(buf []byte) ([]float64, []int, error) {
	if IsParallelStream(buf) {
		return DecompressParallel(buf, 0)
	}
	if IsStreamContainer(buf) {
		return decompressStreamBuf(buf)
	}
	return Decompress(buf)
}
