package repro_test

// Benchmark harness: one benchmark per table/figure of the paper (run the
// full set with `go test -bench=. -benchmem`), plus per-compressor
// throughput microbenchmarks. The experiment benchmarks execute the same
// runners as cmd/benchtables at test scale and report headline numbers as
// custom metrics; run cmd/benchtables for the full printed tables.

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"repro"
	"repro/internal/bitio"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/huffman"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = datagen.ScaleTest
	return cfg
}

// BenchmarkTableII_BaseSelectionSZ regenerates Table II (compression ratio
// of log bases 2/e/10 for SZ_T on two NYX fields).
func BenchmarkTableII_BaseSelectionSZ(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Headline: base-2 CR on density at 1e-2 and max deviation of
			// other bases from it.
			base2 := res.Ratio[0][2][0]
			worstDev := 0.0
			for fi := range res.Fields {
				for bi := range res.Bounds {
					for k := 1; k < 3; k++ {
						d := res.Ratio[fi][bi][k]/res.Ratio[fi][bi][0] - 1
						if d < 0 {
							d = -d
						}
						if d > worstDev {
							worstDev = d
						}
					}
				}
			}
			b.ReportMetric(base2, "CR(base2,density,1e-2)")
			b.ReportMetric(worstDev*100, "max-base-deviation-%")
		}
	}
}

// BenchmarkFigure1_RateDistortionZFP regenerates Figure 1 (rel-PSNR vs
// bit-rate for ZFP_T under the three bases).
func BenchmarkFigure1_RateDistortionZFP(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			mid := len(experiments.Figure1Bounds) / 2
			p := res.Series[0][0][mid]
			b.ReportMetric(p.BitRate, "bitrate(density,mid)")
			b.ReportMetric(p.RelPSNR, "relPSNR(density,mid)")
		}
	}
}

// BenchmarkTableIII_TransformOverhead regenerates Table III (pre-/post-
// processing time per base).
func BenchmarkTableIII_TransformOverhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Post-processing slowdown of base 10 vs base 2 (the paper's
			// reason for fixing base 2).
			slow := res.PostSeconds[0][2] / res.PostSeconds[0][0]
			b.ReportMetric(slow, "base10/base2-postproc")
		}
	}
}

// BenchmarkTableIV_StrictBound regenerates Table IV (strict error-bound
// test across the six compressors).
func BenchmarkTableIV_StrictBound(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIV(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Algo == repro.SZT && r.Field == "dark_matter_density" && r.Bound == 1e-2 {
					b.ReportMetric(r.Ratio, "CR(SZ_T,density,1e-2)")
					b.ReportMetric(r.MaxE, "maxE(SZ_T,density,1e-2)")
				}
			}
		}
	}
}

// BenchmarkFigure2_CompressionRatio and BenchmarkFigure3_Throughput
// regenerate the four-application sweeps.
func BenchmarkFigure2_CompressionRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r2, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// SZ_T win count across all (app, bound) cells.
			sztIdx := -1
			for k, a := range experiments.Figure23Algos {
				if a == repro.SZT {
					sztIdx = k
				}
			}
			wins, cells := 0, 0
			for ai := range r2.Apps {
				for bi := range experiments.Figure23Bounds {
					cells++
					best := true
					for k := range experiments.Figure23Algos {
						if k != sztIdx && r2.Ratio[ai][k][bi] > r2.Ratio[ai][sztIdx][bi] {
							best = false
						}
					}
					if best {
						wins++
					}
				}
			}
			b.ReportMetric(float64(wins), "SZ_T-wins")
			b.ReportMetric(float64(cells), "cells")
		}
	}
}

func BenchmarkFigure3_Throughput(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r3, err := experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// NYX SZ_T compression rate at 1e-2.
			for ai, app := range r3.Apps {
				if app != "NYX" {
					continue
				}
				for k, a := range experiments.Figure23Algos {
					if a == repro.SZT {
						b.ReportMetric(r3.CompressMBs[ai][k][2], "SZ_T-NYX-comp-MB/s")
						b.ReportMetric(r3.DecompressMBs[ai][k][2], "SZ_T-NYX-decomp-MB/s")
					}
				}
			}
		}
	}
}

// BenchmarkFigure4_Multiprecision regenerates the matched-ratio slice
// distortion comparison.
func BenchmarkFigure4_Multiprecision(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, e := range res.Entries {
				switch e.Name {
				case "SZ_T":
					b.ReportMetric(e.MaxRel, "maxRel(SZ_T)")
				case "FPZIP":
					b.ReportMetric(e.MaxRel, "maxRel(FPZIP)")
				}
			}
		}
	}
}

// BenchmarkFigure5_AngleSkew regenerates the velocity-direction experiment.
func BenchmarkFigure5_AngleSkew(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, e := range res.Entries {
				switch e.Name {
				case "SZ_T":
					b.ReportMetric(e.Skew.Avg, "avgSkew(SZ_T)")
				case "SZ_ABS":
					b.ReportMetric(e.Skew.Avg, "avgSkew(SZ_ABS)")
				}
			}
		}
	}
}

// BenchmarkFigure6_ParallelIO regenerates the parallel dump/load model.
func BenchmarkFigure6_ParallelIO(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sztDump, bestOtherDump float64
			for _, e := range res.Entries {
				if e.Cores != 4096 {
					continue
				}
				t := e.Dump.Total().Seconds()
				if e.Algo == repro.SZT {
					sztDump = t
				} else if bestOtherDump == 0 || t < bestOtherDump {
					bestOtherDump = t
				}
			}
			b.ReportMetric(sztDump, "SZ_T-dump-s@4096")
			b.ReportMetric(bestOtherDump/sztDump, "speedup-vs-2nd-best")
		}
	}
}

// --- Per-compressor throughput microbenchmarks -------------------------

func benchField(b *testing.B) datagen.Field {
	b.Helper()
	return datagen.NYX(32, 99)[0] // dark_matter_density 32^3
}

func benchCompress(b *testing.B, algo repro.Algorithm) {
	f := benchField(b)
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := repro.Compress(f.Data, f.Dims, 1e-2, algo, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(f.Bytes())/float64(len(buf)), "ratio")
		}
	}
}

func benchDecompress(b *testing.B, algo repro.Algorithm) {
	f := benchField(b)
	buf, err := repro.Compress(f.Data, f.Dims, 1e-2, algo, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressSZT(b *testing.B)       { benchCompress(b, repro.SZT) }
func BenchmarkCompressZFPT(b *testing.B)      { benchCompress(b, repro.ZFPT) }
func BenchmarkCompressSZPWR(b *testing.B)     { benchCompress(b, repro.SZPWR) }
func BenchmarkCompressZFPP(b *testing.B)      { benchCompress(b, repro.ZFPP) }
func BenchmarkCompressFPZIP(b *testing.B)     { benchCompress(b, repro.FPZIP) }
func BenchmarkCompressISABELA(b *testing.B)   { benchCompress(b, repro.ISABELA) }
func BenchmarkDecompressSZT(b *testing.B)     { benchDecompress(b, repro.SZT) }
func BenchmarkDecompressZFPT(b *testing.B)    { benchDecompress(b, repro.ZFPT) }
func BenchmarkDecompressSZPWR(b *testing.B)   { benchDecompress(b, repro.SZPWR) }
func BenchmarkDecompressFPZIP(b *testing.B)   { benchDecompress(b, repro.FPZIP) }
func BenchmarkDecompressISABELA(b *testing.B) { benchDecompress(b, repro.ISABELA) }

// --- Streaming pipeline benchmarks -------------------------------------
//
// BenchmarkCompressParallel vs BenchmarkCompressStream on the same field
// and chunking is the acceptance comparison for the bounded-memory
// pipeline: the streaming path must stay within ~10% of the in-memory
// parallel path's throughput while holding O(workers × chunk) floats.

func benchStreamField(b *testing.B) (datagen.Field, []byte) {
	b.Helper()
	f := datagen.NYX(64, 99)[0] // dark_matter_density 64^3, 2 MiB
	raw := make([]byte, len(f.Data)*8)
	for i, v := range f.Data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return f, raw
}

const benchStreamChunks = 8

func BenchmarkCompressParallel(b *testing.B) {
	f, _ := benchStreamField(b)
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := repro.CompressParallel(f.Data, f.Dims, 1e-2, repro.SZT,
			&repro.ParallelOptions{Chunks: benchStreamChunks})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(f.Bytes())/float64(len(buf)), "ratio")
		}
	}
}

func BenchmarkCompressStream(b *testing.B) {
	f, raw := benchStreamField(b)
	chunkRows := (f.Dims[0] + benchStreamChunks - 1) / benchStreamChunks
	var out bytes.Buffer
	out.Grow(len(raw))
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		st, err := repro.CompressStream(bytes.NewReader(raw), &out, f.Dims, 1e-2, repro.SZT,
			&repro.StreamOptions{ChunkRows: chunkRows})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(st.BytesIn)/float64(st.BytesOut), "ratio")
			b.ReportMetric(float64(st.MaxInFlight), "max-in-flight")
		}
	}
}

func BenchmarkDecompressStream(b *testing.B) {
	f, raw := benchStreamField(b)
	chunkRows := (f.Dims[0] + benchStreamChunks - 1) / benchStreamChunks
	var comp bytes.Buffer
	if _, err := repro.CompressStream(bytes.NewReader(raw), &comp, f.Dims, 1e-2, repro.SZT,
		&repro.StreamOptions{ChunkRows: chunkRows}); err != nil {
		b.Fatal(err)
	}
	stream := comp.Bytes()
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.DecompressStream(bytes.NewReader(stream), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadRows measures the seekable read path on a 10k-chunk
// container: the 1% range must cost O(touched chunks) — compare its
// per-op time and chunks/op against the full span, which decodes all
// 10k. Run `benchtables -exp seek` for the bytes-fetched table.
func BenchmarkReadRows(b *testing.B) {
	const rows, stride = 10000, 4
	data := make([]float64, rows*stride)
	for i := range data {
		data[i] = 40*math.Cos(float64(i)/7) + 90
	}
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	var comp bytes.Buffer
	if _, err := repro.CompressStream(bytes.NewReader(raw), &comp, []int{rows, stride},
		1e-2, repro.SZT, &repro.StreamOptions{ChunkRows: 1}); err != nil {
		b.Fatal(err)
	}
	stream := comp.Bytes()
	for _, c := range []struct {
		name         string
		start, count uint64
	}{
		{"range1pct", rows * 2 / 5, rows / 100},
		{"fullspan", 0, rows},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			h, err := repro.OpenStream(bytes.NewReader(stream))
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]float64, c.count*stride)
			b.SetBytes(int64(len(dst)) * 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.ReadRows(dst, c.start, c.count); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(h.Stats().Chunks)/float64(b.N), "chunks/op")
		})
	}
}

// --- Allocation microbenchmarks (allochot remediation) -----------------
//
// Compare with `go test -bench='HuffmanBuild|BitWriter|ISABELA' -benchmem`
// before and after hoisting the per-iteration buffers: the codec setup
// and inner loops should allocate a small constant number of times, not
// O(iterations).

// BenchmarkHuffmanBuild measures codebook construction (the setup cost of
// every SZ_T and ISABELA encode); the build heap is preallocated to the
// alphabet size.
func BenchmarkHuffmanBuild(b *testing.B) {
	freqs := make([]uint64, 66)
	for i := range freqs {
		freqs[i] = uint64(i*i + 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := huffman.Build(freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitWriter measures the bit-packing word-flush path that every
// encoder funnels through.
func BenchmarkBitWriter(b *testing.B) {
	const words = 1024
	b.SetBytes(words * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(words * 8)
		for j := 0; j < words; j++ {
			w.WriteBits(uint64(j)*0x9E3779B97F4A7C15, 53)
		}
		if len(w.Bytes()) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkAblationRoundoffGuard measures the cost of Lemma 2's guard.
func BenchmarkAblationRoundoffGuard(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		if _, err := repro.Compress(f.Data, f.Dims, 1e-2, repro.SZT, &repro.Options{DisableRoundoffGuard: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSZIntervals sweeps SZ's quantization capacity.
func BenchmarkAblationSZIntervals(b *testing.B) {
	f := benchField(b)
	for _, iv := range []int{256, 4096, 65536} {
		iv := iv
		b.Run(intervalName(iv), func(b *testing.B) {
			b.SetBytes(int64(f.Bytes()))
			for i := 0; i < b.N; i++ {
				buf, err := repro.Compress(f.Data, f.Dims, 1e-2, repro.SZT, &repro.Options{Intervals: iv})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(f.Bytes())/float64(len(buf)), "ratio")
				}
			}
		})
	}
}

func intervalName(iv int) string {
	switch iv {
	case 256:
		return "intervals256"
	case 4096:
		return "intervals4096"
	default:
		return "intervals65536"
	}
}

// BenchmarkAblationPWRBlockSide sweeps SZ_PWR's block size (the design the
// paper's transform replaces).
func BenchmarkAblationPWRBlockSide(b *testing.B) {
	f := benchField(b)
	for _, side := range []int{4, 8, 16} {
		side := side
		name := map[int]string{4: "side4", 8: "side8", 16: "side16"}[side]
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(f.Bytes()))
			for i := 0; i < b.N; i++ {
				buf, err := repro.Compress(f.Data, f.Dims, 1e-2, repro.SZPWR, &repro.Options{BlockSide: side})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(f.Bytes())/float64(len(buf)), "ratio")
				}
			}
		})
	}
}

// BenchmarkArchiveStreamWrite measures the streaming-archive writer on
// a two-field bundle — the per-field overhead over a bare stream is the
// directory bookkeeping, which should be noise.
func BenchmarkArchiveStreamWrite(b *testing.B) {
	f, raw := benchStreamField(b)
	b.SetBytes(int64(2 * len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		aw, err := repro.NewArchiveStreamWriter(&buf, repro.WithChunkRows(f.Dims[0]/benchStreamChunks))
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"a", "b"} {
			if _, err := aw.AddField(name, bytes.NewReader(raw), f.Dims, 1e-2, repro.SZT); err != nil {
				b.Fatal(err)
			}
		}
		if err := aw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveStreamField measures opening one field of a sealed
// archive and reading a quarter of its rows — the random-access path a
// post-hoc analysis tool takes.
func BenchmarkArchiveStreamField(b *testing.B) {
	f, raw := benchStreamField(b)
	var buf bytes.Buffer
	aw, err := repro.NewArchiveStreamWriter(&buf, repro.WithChunkRows(f.Dims[0]/benchStreamChunks))
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := aw.AddField(name, bytes.NewReader(raw), f.Dims, 1e-2, repro.SZT); err != nil {
			b.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		b.Fatal(err)
	}
	arch := buf.Bytes()
	rows := uint64(f.Dims[0] / 4)
	stride := len(f.Data) / f.Dims[0]
	dst := make([]float64, rows*uint64(stride))
	b.SetBytes(int64(len(dst) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as, err := repro.OpenArchiveStream(bytes.NewReader(arch))
		if err != nil {
			b.Fatal(err)
		}
		h, err := as.Field("b")
		if err != nil {
			b.Fatal(err)
		}
		if err := h.ReadRows(dst, rows, rows); err != nil {
			b.Fatal(err)
		}
	}
}
