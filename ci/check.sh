#!/usr/bin/env bash
# ci/check.sh — the full local/CI gate for this repository.
#
# Runs, in order: formatting, go vet, the domain lint suite (cmd/pwrvet),
# build, tests, a focused fault-injection/cancellation/salvage sweep
# (these double as the goroutine-leak accounting pass), the race
# detector, and a short fuzz smoke pass over the decode-path fuzz
# targets. Everything here must pass before merging.
#
# Usage: ci/check.sh [fuzztime]
#   fuzztime — per-target fuzz budget (default 5s; "0" skips fuzzing).
set -euo pipefail

cd "$(dirname "$0")/.."

FUZZTIME="${1:-5s}"

step() { printf '\n== %s ==\n' "$*"; }

step "gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "${unformatted}" ]]; then
    echo "gofmt needed on:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

step "go vet"
go vet ./...

step "pwrvet cache freshness"
PWRVET="$(mktemp -d)/pwrvet"
trap 'rm -rf "$(dirname "${PWRVET}")"' EXIT
go build -o "${PWRVET}" ./cmd/pwrvet
# The committed summary cache must match the tracked sources, so every
# checkout gets the sub-second replay path. When this fails, run
#   go run ./cmd/pwrvet -cache ci/pwrvet-cache.json ./...
# and commit the refreshed ci/pwrvet-cache.json.
"${PWRVET}" -cache ci/pwrvet-cache.json -cache-verify

step "pwrvet (domain lint, baseline-gated, cached)"
lint_start="$(date +%s)"
"${PWRVET}" -stats -cache ci/pwrvet-cache.json -baseline ci/pwrvet-baseline.json ./...
lint_end="$(date +%s)"
lint_elapsed=$((lint_end - lint_start))
echo "module-wide pass: ${lint_elapsed}s"
if (( lint_elapsed > 60 )); then
    echo "pwrvet exceeded the 60s wall-clock budget (${lint_elapsed}s)" >&2
    exit 1
fi

step "pwrvet self-lint"
"${PWRVET}" ./internal/lint/... ./cmd/pwrvet

step "go build"
go build ./...

step "go test"
go test -timeout 10m ./...

step "fault-injection sweep + goroutine accounting"
go test -timeout 10m -run 'TestFault|TestDecodeLimits|TestSalvage|Parity|Verify|Ctx' -count=1 .

step "go test -race"
go test -race -timeout 20m ./...

if [[ "${FUZZTIME}" != "0" ]]; then
    step "fuzz smoke (${FUZZTIME} per target)"
    for target in FuzzDecompress FuzzDecompressParallel FuzzOpenArchive FuzzHeaderMutation FuzzCompressRoundTrip FuzzDecompressStream FuzzStreamRoundTrip FuzzStreamSalvage FuzzOpenStream FuzzReadRows FuzzOpenArchiveStream; do
        echo "-- ${target}"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="${FUZZTIME}" .
    done
fi

printf '\nAll checks passed.\n'
