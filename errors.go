package repro

import (
	"fmt"

	"repro/internal/codecerr"
)

// The decode-error taxonomy. Every decode path in the module (plain,
// parallel, stream, archive) wraps these sentinels with %w, so callers
// dispatch with errors.Is:
//
//	_, _, err := repro.DecompressAny(buf)
//	switch {
//	case errors.Is(err, repro.ErrTruncated):      // resumable: fetch the rest
//	case errors.Is(err, repro.ErrLimitExceeded):  // well-formed but too big
//	case errors.Is(err, repro.ErrCorrupted):      // damaged: salvage or discard
//	case errors.Is(err, repro.ErrUnsupportedFormat): // not ours
//	}
//
// ErrTruncated wraps ErrCorrupted (truncation is a species of damage),
// so a caller that only distinguishes "bad bytes" from "refused" can
// test ErrCorrupted alone. Genuine I/O errors from a source reader or
// sink writer are never relabeled: they propagate wrapped, and
// errors.Is against the original error keeps working.
var (
	// ErrCorrupted reports a structurally damaged container: bad
	// framing, a checksum mismatch, an impossible geometry.
	ErrCorrupted = codecerr.ErrCorrupted

	// ErrCorrupt is the original name for ErrCorrupted, kept so
	// existing errors.Is call sites continue to compile and match.
	ErrCorrupt = ErrCorrupted

	// ErrTruncated reports input that ends before its container
	// structure does. It wraps ErrCorrupted.
	ErrTruncated = codecerr.ErrTruncated

	// ErrLimitExceeded reports well-formed input that declares
	// resources beyond the caller's DecodeLimits.
	ErrLimitExceeded = codecerr.ErrLimitExceeded

	// ErrUnsupportedFormat reports bytes that are not any container
	// this module decodes (wrong magic or version).
	ErrUnsupportedFormat = codecerr.ErrUnsupportedFormat
)

// ErrVerifyFailed reports a chunk that failed verify-after-encode
// (StreamOptions.VerifyOnWrite or ParallelOptions.Verify): the sealed
// payload did not decode back to its source rows within the promised
// guarantees. It indicates encoder or memory corruption at write time,
// caught before the container was committed.
var ErrVerifyFailed = fmt.Errorf("repro: verify-after-encode failed")

// recoverDecode is the panic boundary at every exported decode entry
// point: a residual codec panic on hostile input (anything the
// pwrvet nopanic audit and the fuzz corpus have not pinned down yet)
// surfaces as ErrCorrupted instead of crossing the API edge. Use as
//
//	defer recoverDecode(&err)
//
// with a named error return.
func recoverDecode(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: decoder panic: %v", ErrCorrupted, r)
	}
}
