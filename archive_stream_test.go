package repro

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bitio"
	"repro/internal/datagen"
	"repro/internal/streamfmt"
	"repro/internal/testutil"
)

// buildStreamArchive writes the named fields through an
// ArchiveStreamWriter and returns the sealed v3 container.
func buildStreamArchive(t testing.TB, fields map[string][]float64, dims []int, opts ...StreamOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	aw, err := NewArchiveStreamWriter(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic container layout
	for _, n := range names {
		if _, err := aw.AddField(n, bytes.NewReader(rawLE(fields[n])), dims, 1e-3, SZT, WithChunkRows(4)); err != nil {
			t.Fatalf("field %q: %v", n, err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func archiveTestFields() (map[string][]float64, []int) {
	fs := datagen.NYX(16, 7)
	out := map[string][]float64{
		"velocity": fs[0].Data,
		"pressure": fs[1].Data,
		"temp":     fs[2].Data,
	}
	return out, fs[0].Dims
}

// TestArchiveStreamRoundTrip seals a multi-field archive through the
// streaming writer and reads it back two ways: the in-memory v3 reader
// (whole-area CRC) and per-field seekable handles from
// OpenArchiveStream. Both must match a reference decode of each field
// compressed standalone with identical chunking.
func TestArchiveStreamRoundTrip(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields, dims := archiveTestFields()
	arch := buildStreamArchive(t, fields, dims)

	want := map[string][]float64{}
	for n, data := range fields {
		var comp bytes.Buffer
		if _, err := CompressStreamOpts(bytes.NewReader(rawLE(data)), &comp, dims, 1e-3, SZT, WithChunkRows(4)); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if _, err := DecompressStreamOpts(bytes.NewReader(comp.Bytes()), &out); err != nil {
			t.Fatal(err)
		}
		want[n] = fromLE(out.Bytes())
	}

	ar, err := OpenArchive(arch)
	if err != nil {
		t.Fatalf("OpenArchive(v3): %v", err)
	}
	if got := len(ar.Fields()); got != len(fields) {
		t.Fatalf("archive holds %d fields, want %d", got, len(fields))
	}
	for n := range fields {
		dec, gotDims, err := ar.Field(n)
		if err != nil {
			t.Fatalf("Field(%q): %v", n, err)
		}
		if len(gotDims) != len(dims) || gotDims[0] != dims[0] {
			t.Fatalf("Field(%q) dims %v want %v", n, gotDims, dims)
		}
		for i := range dec {
			if dec[i] != want[n][i] {
				t.Fatalf("Field(%q)[%d] = %g, want %g", n, i, dec[i], want[n][i])
			}
		}
	}

	as, err := OpenArchiveStream(bytes.NewReader(arch))
	if err != nil {
		t.Fatalf("OpenArchiveStream: %v", err)
	}
	for n := range fields {
		h, err := as.Field(n)
		if err != nil {
			t.Fatalf("stream Field(%q): %v", n, err)
		}
		rows := h.Rows()
		got := make([]float64, int(rows)*h.RowStride())
		if err := h.ReadRows(got, 0, rows); err != nil {
			t.Fatalf("ReadRows(%q): %v", n, err)
		}
		for i := range got {
			if got[i] != want[n][i] {
				t.Fatalf("stream Field(%q)[%d] = %g, want %g", n, i, got[i], want[n][i])
			}
		}
	}
}

// TestArchiveStreamMixedKinds covers AddField32 and AddCompressed
// extents in one bundle.
func TestArchiveStreamMixedKinds(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(8, 11)[0]
	raw32 := make([]byte, len(f.Data)*4)
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(raw32[i*4:], math.Float32bits(float32(v)))
	}
	plain, err := Compress(f.Data, f.Dims, 1e-3, ZFPT, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	aw, err := NewArchiveStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw.AddField32("narrow", bytes.NewReader(raw32), f.Dims, 1e-3, SZT); err != nil {
		t.Fatal(err)
	}
	if err := aw.AddCompressed("plain", plain); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	ar, err := OpenArchive(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"narrow", "plain"} {
		if dec, _, err := ar.Field(n); err != nil || len(dec) != len(f.Data) {
			t.Fatalf("Field(%q): len %d err %v", n, len(dec), err)
		}
	}

	// The seekable path serves the stream-container field; the plain
	// blob is typed ErrUnsupportedFormat there (not a stream container).
	as, err := OpenArchiveStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h, err := as.Field("narrow")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float32, len(f.Data))
	if err := h.ReadRows32(got, 0, h.Rows()); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Field("plain"); !errors.Is(err, ErrUnsupportedFormat) {
		t.Fatalf("Field(plain) err = %v, want ErrUnsupportedFormat", err)
	}
}

// rangeRecordingSeeker records the byte ranges actually fetched from
// the underlying source.
type rangeRecordingSeeker struct {
	r      *bytes.Reader
	pos    int64
	ranges [][2]int64
}

func (c *rangeRecordingSeeker) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.ranges = append(c.ranges, [2]int64{c.pos, c.pos + int64(n)})
		c.pos += int64(n)
	}
	return n, err
}

func (c *rangeRecordingSeeker) Seek(offset int64, whence int) (int64, error) {
	pos, err := c.r.Seek(offset, whence)
	c.pos = pos
	return pos, err
}

// TestArchiveStreamFieldLocality asserts the acceptance criterion that
// opening one field and reading rows from it fetches no bytes from
// sibling fields' extents.
func TestArchiveStreamFieldLocality(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields, dims := archiveTestFields()
	arch := buildStreamArchive(t, fields, dims)

	// Recover each field's absolute extent: Raw returns a slice of the
	// container's blob area, so bytes.Index locates it (compressed
	// streams are distinct at these sizes).
	ar, err := OpenArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	extent := map[string][2]int64{}
	for _, n := range ar.Fields() {
		blob, err := ar.Raw(n)
		if err != nil {
			t.Fatal(err)
		}
		start := int64(bytes.Index(arch, blob))
		if start < 0 {
			t.Fatalf("field %q blob not found in container", n)
		}
		extent[n] = [2]int64{start, start + int64(len(blob))}
	}

	src := &rangeRecordingSeeker{r: bytes.NewReader(arch)}
	as, err := OpenArchiveStream(src)
	if err != nil {
		t.Fatal(err)
	}
	src.ranges = nil // drop the open-time trailer/directory fetches

	const target = "pressure"
	h, err := as.Field(target)
	if err != nil {
		t.Fatal(err)
	}
	rows := h.Rows()
	dst := make([]float64, int(rows/2)*h.RowStride())
	if err := h.ReadRows(dst, rows/4, rows/2); err != nil {
		t.Fatal(err)
	}

	if len(src.ranges) == 0 {
		t.Fatal("no reads recorded — locality assertion is vacuous")
	}
	lo, hi := extent[target][0], extent[target][1]
	for _, r := range src.ranges {
		if r[0] < lo || r[1] > hi {
			t.Fatalf("fetch [%d,%d) strayed outside field %q extent [%d,%d)", r[0], r[1], target, lo, hi)
		}
	}
}

// TestArchiveStreamConcurrentFields reads different fields from the
// same archive concurrently; the section views must serialize access to
// the shared seeker without mixing positions (the race detector is the
// co-assertor here).
func TestArchiveStreamConcurrentFields(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields, dims := archiveTestFields()
	arch := buildStreamArchive(t, fields, dims)
	as, err := OpenArchiveStream(bytes.NewReader(arch))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]float64{}
	for n := range fields {
		h, err := as.Field(n)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, int(h.Rows())*h.RowStride())
		if err := h.ReadRows(out, 0, h.Rows()); err != nil {
			t.Fatal(err)
		}
		want[n] = out
	}

	var wg sync.WaitGroup
	errs := make(chan error, 3*len(fields))
	for n := range fields {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				h, err := as.Field(n)
				if err != nil {
					errs <- err
					return
				}
				got := make([]float64, int(h.Rows())*h.RowStride())
				if err := h.ReadRows(got, 0, h.Rows()); err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != want[n][i] {
						errs <- errors.New("concurrent read mismatch on field " + n)
						return
					}
				}
			}(n)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// v3Entry is one crafted directory entry for buildArchiveV3.
type v3Entry struct {
	name     string
	off, len uint64
}

// buildArchiveV3 hand-crafts a v3 container with correct CRCs and
// trailer, so only the targeted defect trips — adversarial-directory
// coverage mirroring the v2 crafted-archive regressions. extraDir bytes
// land after the entries but inside the CRC'd, length-counted
// directory.
func buildArchiveV3(blobArea []byte, entries []v3Entry, count uint64, extraDir []byte) []byte {
	out := []byte{archiveMagicV3, archiveV3Ver}
	out = append(out, blobArea...)
	dir := bitio.AppendUvarint(nil, count)
	for _, e := range entries {
		dir = bitio.AppendUvarint(dir, uint64(len(e.name)))
		dir = append(dir, e.name...)
		dir = bitio.AppendUvarint(dir, e.off)
		dir = bitio.AppendUvarint(dir, e.len)
	}
	dir = append(dir, extraDir...)
	out = append(out, dir...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(dir))
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(blobArea))
	out = binary.BigEndian.AppendUint64(out, uint64(len(dir)))
	return out
}

// TestArchiveV3Adversarial feeds crafted v3 directories to both the
// in-memory and the seekable opener: overlapping extents, duplicate
// names, hostile field counts, out-of-range and wrapping extents, and
// trailing directory bytes must all fail typed — never alias blobs or
// allocate off the declared count.
func TestArchiveV3Adversarial(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(8, 3)[0]
	var blob bytes.Buffer
	if _, err := CompressStreamOpts(bytes.NewReader(rawLE(f.Data)), &blob, f.Dims, 1e-3, SZT, WithChunkRows(4)); err != nil {
		t.Fatal(err)
	}
	area := blob.Bytes()
	bl := uint64(len(area))

	cases := []struct {
		name string
		arch []byte
	}{
		{"overlap", buildArchiveV3(area, []v3Entry{
			{"a", 0, bl}, {"b", 1, bl - 1}}, 2, nil)},
		{"duplicate", buildArchiveV3(area, []v3Entry{
			{"a", 0, bl}, {"a", 0, 0}}, 2, nil)},
		{"out-of-range", buildArchiveV3(area, []v3Entry{
			{"a", 1, bl}}, 1, nil)},
		{"wrap", buildArchiveV3(area, []v3Entry{
			{"a", ^uint64(0) - 8, 16}}, 1, nil)},
		{"hostile-count", buildArchiveV3(area, []v3Entry{
			{"a", 0, bl}}, 1<<19, nil)},
		{"absurd-count", buildArchiveV3(area, []v3Entry{
			{"a", 0, bl}}, 1<<60, nil)},
		{"trailing-dir-bytes", buildArchiveV3(area, []v3Entry{
			{"a", 0, bl}}, 1, []byte{0xEE, 0xEE})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := OpenArchive(tc.arch); !errors.Is(err, ErrCorrupted) && !errors.Is(err, ErrTruncated) {
				t.Errorf("OpenArchive: err = %v, want ErrCorrupted/ErrTruncated", err)
			}
			if _, err := OpenArchiveStream(bytes.NewReader(tc.arch)); !errors.Is(err, ErrCorrupted) && !errors.Is(err, ErrTruncated) {
				t.Errorf("OpenArchiveStream: err = %v, want ErrCorrupted/ErrTruncated", err)
			}
		})
	}

	good := buildArchiveV3(area, []v3Entry{{"a", 0, bl}}, 1, nil)

	// Baseline sanity: the crafted container with no defect opens on
	// both paths, so the rejections above are the defects' doing.
	if _, err := OpenArchive(good); err != nil {
		t.Fatalf("crafted good archive rejected in-memory: %v", err)
	}
	if _, err := OpenArchiveStream(bytes.NewReader(good)); err != nil {
		t.Fatalf("crafted good archive rejected by seekable opener: %v", err)
	}

	// Damaged directory CRC.
	crcFlip := append([]byte(nil), good...)
	crcFlip[len(crcFlip)-16] ^= 0x40
	if _, err := OpenArchive(crcFlip); !errors.Is(err, ErrCorrupted) {
		t.Errorf("flipped dir CRC, in-memory: err = %v, want ErrCorrupted", err)
	}
	if _, err := OpenArchiveStream(bytes.NewReader(crcFlip)); !errors.Is(err, ErrCorrupted) {
		t.Errorf("flipped dir CRC, seekable: err = %v, want ErrCorrupted", err)
	}

	// Forged directory length: claims a directory larger than the file.
	huge := append([]byte(nil), good...)
	huge[len(huge)-8] = 0x7F
	if _, err := OpenArchive(huge); !errors.Is(err, ErrCorrupted) {
		t.Errorf("forged dirLen, in-memory: err = %v, want ErrCorrupted", err)
	}
	if _, err := OpenArchiveStream(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupted) {
		t.Errorf("forged dirLen, seekable: err = %v, want ErrCorrupted", err)
	}

	// Truncations at every prefix length fail typed, never panic.
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := OpenArchive(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted in-memory", cut)
		}
		if _, err := OpenArchiveStream(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted by seekable opener", cut)
		}
	}

	// Blob-area damage: the in-memory opener refuses outright (whole-
	// area CRC); the seekable opener accepts the directory — its trust
	// model delegates data integrity to per-chunk CRCs — and the read
	// fails.
	flip := append([]byte(nil), good...)
	flip[2+int(bl)/2] ^= 0x01
	if _, err := OpenArchive(flip); !errors.Is(err, ErrCorrupted) {
		t.Errorf("blob flip, in-memory: err = %v, want ErrCorrupted", err)
	}
	as, err := OpenArchiveStream(bytes.NewReader(flip))
	if err != nil {
		t.Fatalf("blob flip, seekable open: %v", err)
	}
	h, err := as.Field("a")
	if err == nil {
		dst := make([]float64, int(h.Rows())*h.RowStride())
		err = h.ReadRows(dst, 0, h.Rows())
	}
	if !errors.Is(err, ErrCorrupted) {
		t.Errorf("blob flip, seekable read: err = %v, want ErrCorrupted", err)
	}

	// Limits: MaxFields bounds the directory on both paths.
	two := buildStreamArchive(t, map[string][]float64{"x": f.Data, "y": f.Data}, f.Dims)
	lim := &DecodeLimits{MaxFields: 1}
	if _, err := OpenArchiveLimits(two, lim); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("MaxFields, in-memory: err = %v, want ErrLimitExceeded", err)
	}
	if _, err := OpenArchiveStream(bytes.NewReader(two), WithLimits(lim)); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("MaxFields, seekable: err = %v, want ErrLimitExceeded", err)
	}

	// Unknown field on a healthy archive.
	okStream, err := OpenArchiveStream(bytes.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := okStream.Field("nope"); err == nil {
		t.Error("unknown field name accepted")
	}
}

// TestArchiveStreamWriterMisuse pins writer-side validation: bad names,
// duplicates, use-after-close, non-poisoning pre-write failures, and
// the sticky error after a mid-blob failure.
func TestArchiveStreamWriterMisuse(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(8, 5)[0]
	var buf bytes.Buffer
	aw, err := NewArchiveStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw.AddField("", bytes.NewReader(rawLE(f.Data)), f.Dims, 1e-3, SZT); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := aw.AddField("x", bytes.NewReader(rawLE(f.Data)), f.Dims, 1e-3, SZT); err != nil {
		t.Fatal(err)
	}
	if _, err := aw.AddField("x", bytes.NewReader(rawLE(f.Data)), f.Dims, 1e-3, SZT); err == nil {
		t.Error("duplicate name accepted")
	}
	// A validation failure before any blob byte must not poison the writer.
	if _, err := aw.AddField("bad", bytes.NewReader(nil), []int{0}, 1e-3, SZT); err == nil {
		t.Error("invalid dims accepted")
	}
	if _, err := aw.AddField("y", bytes.NewReader(rawLE(f.Data)), f.Dims, 1e-3, SZT); err != nil {
		t.Fatalf("writer poisoned by pre-write validation failure: %v", err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := aw.AddField("z", bytes.NewReader(rawLE(f.Data)), f.Dims, 1e-3, SZT); err == nil {
		t.Error("AddField after Close accepted")
	}
	if err := aw.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if ar, err := OpenArchive(buf.Bytes()); err != nil || len(ar.Fields()) != 2 {
		t.Fatalf("sealed archive: err=%v", err)
	}

	// Truncated input mid-blob: the sink holds a partial extent, so the
	// writer must go sticky and Close must refuse to seal.
	var buf2 bytes.Buffer
	aw2, err := NewArchiveStreamWriter(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	short := rawLE(f.Data)[:len(f.Data)*4]
	if _, err := aw2.AddField("partial", bytes.NewReader(short), f.Dims, 1e-3, SZT, WithChunkRows(2)); err == nil {
		t.Fatal("short input accepted")
	}
	if err := aw2.Close(); err == nil {
		t.Error("Close succeeded on a poisoned writer")
	}

	// AddCompressed rejects non-container bytes without poisoning.
	var buf3 bytes.Buffer
	aw3, err := NewArchiveStreamWriter(&buf3)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw3.AddCompressed("junk", []byte{0xFF, 0x01, 0x02}); err == nil {
		t.Error("AddCompressed accepted junk bytes")
	}
	if err := aw3.Close(); err != nil {
		t.Fatalf("empty-archive Close after rejected AddCompressed: %v", err)
	}
}

// TestArchiveStreamMemoryBudget is the live-allocation acceptance test:
// fields much larger than the budget stream through AddField and back
// out of DecompressStreamOpts with peak buffer memory governed by
// WithMemoryBudget — proven deterministically by checking the chunk
// geometry the derivation sealed into the container against the
// pipeline's buffer accounting, and end-to-end by a sampled heap
// high-water mark far below the field size.
func TestArchiveStreamMemoryBudget(t *testing.T) {
	defer testutil.NoLeak(t)()
	const (
		rowStride = 4096 // floats per row: 32 KiB
		rows      = 512  // field: 16 MiB
		nFields   = 2
		budget    = int64(2 << 20) // 2 MiB: 8× smaller than one field
	)
	fieldBytes := int64(rows) * rowStride * 8

	var heapMax uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	var base runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&base)
	go func() {
		defer close(done)
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > heapMax {
				heapMax = m.HeapAlloc
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var arch bytes.Buffer
	aw, err := NewArchiveStreamWriter(&arch, WithMemoryBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta"}
	stats := map[string]*StreamStats{}
	for i := 0; i < nFields; i++ {
		src := &synthReader{remaining: fieldBytes, i: int64(i) << 20}
		st, err := aw.AddField(names[i], src, []int{rows, rowStride}, 1e-2, SZT)
		if err != nil {
			t.Fatal(err)
		}
		stats[names[i]] = st
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	// Deterministic half of the bound: recover the chunk geometry the
	// budget derivation chose from each sealed blob and check that the
	// chunk buffers the pipeline admits to having allocated fit the
	// budget (raw-chunk working set = BuffersAllocated × chunkBytes).
	ar, err := OpenArchive(arch.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ar.Fields() {
		blob, err := ar.Raw(n)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := streamfmt.NewReaderLimits(bytes.NewReader(blob), streamfmt.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		hdr := sr.Header()
		if hdr.ChunkRows >= rows {
			t.Errorf("field %q: budget left chunkRows at %d (whole field in one chunk)", n, hdr.ChunkRows)
		}
		chunkBytes := int64(hdr.ChunkRows) * int64(hdr.RowStride()) * 8
		st := stats[n]
		if got := int64(st.BuffersAllocated) * chunkBytes; got > budget {
			t.Errorf("field %q: %d chunk buffers × %d B = %d exceeds budget %d",
				n, st.BuffersAllocated, chunkBytes, got, budget)
		}
	}

	// Decode side under the same budget.
	blob, err := ar.Raw("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressStreamOpts(bytes.NewReader(blob), io.Discard, WithMemoryBudget(budget)); err != nil {
		t.Fatal(err)
	}

	close(stop)
	<-done
	if testutil.RaceEnabled {
		t.Log("race detector inflates heap accounting; skipping high-water assertion")
		return
	}
	growth := int64(heapMax) - int64(base.HeapAlloc)
	// The budget governs the pipeline's chunk buffers; compressed
	// payloads in flight, codec scratch, and the accumulating archive
	// bytes ride on top — but the total must stay far below the 32 MiB
	// of field data that streamed through.
	if growth > fieldBytes {
		t.Errorf("heap grew %d bytes against a %d-byte budget (%d bytes streamed)",
			growth, budget, nFields*fieldBytes)
	}
	t.Logf("streamed %d MiB, budget %d MiB, heap high-water growth %d KiB",
		nFields*fieldBytes>>20, budget>>20, growth>>10)
}
