package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/streamfmt"
)

// Seekable random-access decode over the 0xC8 stream container. The
// paper's transformation is point-wise and the container's chunks are
// independent self-describing streams, so any contiguous run of
// dims[0]-rows can be reconstructed from just the chunks that cover it.
// OpenStream parses the header plus the sealing tail index frame —
// never the chunk payloads — and the resulting StreamHandle maps row
// ranges to chunk extents, seeks straight to the first touched frame,
// and decodes only the touched chunks through a bounded worker pool.
// A sub-volume read out of a huge post-hoc analysis dump therefore
// costs O(touched chunks), not O(prefix).
//
// Trust model: the handle trusts the index only after streamfmt has
// verified its CRC and proven that the lengths it declares tile the
// byte range between header and index exactly; every fetched chunk is
// still CRC-checked individually before decode. A container whose index
// is missing or unverifiable fails OpenStream with a typed
// ErrTruncated/ErrCorrupted — the permissive prefix-scanning mode is
// only available as the explicit DecompressStreamSalvage path.

// StreamHandle provides random row access to a stream container. Range
// reads serialize on the handle (the underlying ReadSeeker has a single
// position); open one handle per concurrent reader for parallel ranges.
type StreamHandle struct {
	mu    sync.Mutex
	src   io.ReadSeeker
	ix    *streamfmt.StreamIndex
	cfg   *StreamConfig
	stats StreamStats
}

// OpenStream opens a seekable view of the stream container in src,
// parsing the header and the tail index frame only. The container's
// chunk payloads are not read, let alone decoded, until a range read
// touches them. It takes the same StreamOption set as the other entry
// points: WithLimits is enforced against the header geometry and every
// index-declared chunk length before any input-derived allocation,
// WithContext sets the default context for ReadRows/ReadRows32 (the
// Ctx-suffixed read methods override it per call), and WithWorkers /
// WithMemoryBudget size the per-read decode pool.
func OpenStream(src io.ReadSeeker, opts ...StreamOption) (_ *StreamHandle, err error) {
	defer recoverDecode(&err)
	cfg := resolveStreamConfig(opts)
	ix, err := streamfmt.OpenIndex(src, cfg.Limits.streamLimits())
	if err != nil {
		return nil, err
	}
	return &StreamHandle{src: src, ix: ix, cfg: cfg}, nil
}

// Rows returns the extent of the chunked (slowest) dimension.
func (h *StreamHandle) Rows() uint64 { return uint64(h.ix.Hdr.Rows()) }

// RowStride returns the number of field elements in one dims[0]-row.
func (h *StreamHandle) RowStride() int { return h.ix.Hdr.RowStride() }

// Chunks returns the number of chunk frames in the container.
func (h *StreamHandle) Chunks() int { return h.ix.Chunks() }

// Dims returns a copy of the field dimensions (dims[0] slowest).
func (h *StreamHandle) Dims() []int {
	return append([]int(nil), h.ix.Hdr.Dims...)
}

// Algorithm returns the algorithm that compressed the chunks.
func (h *StreamHandle) Algorithm() Algorithm { return Algorithm(h.ix.Hdr.Algo) }

// Stats returns cumulative counters over the handle's range reads:
// chunks decoded, container bytes fetched (BytesIn), field bytes
// produced (BytesOut), per-stage wall time, and the buffer accounting
// of the bounded pipeline. Open-time header/index bytes are not
// counted — Stats measures what random access actually fetched.
func (h *StreamHandle) Stats() StreamStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// ReadRows decodes rows [start, start+count) of the field into dst,
// which must hold at least count×RowStride() elements. Only the chunks
// covering the range are fetched and decoded; partial chunks at either
// end are trimmed to the requested rows. The reconstruction is
// byte-identical to the corresponding slice of a full DecompressStream
// pass.
func (h *StreamHandle) ReadRows(dst []float64, start, count uint64) error {
	return h.ReadRowsCtx(h.cfg.Ctx, dst, start, count)
}

// ReadRowsCtx is ReadRows under a context: cancellation stops the
// fetch/decode pipeline after at most the chunks already in flight and
// returns the context's error with no goroutines left behind.
func (h *StreamHandle) ReadRowsCtx(ctx context.Context, dst []float64, start, count uint64) (err error) {
	defer recoverDecode(&err)
	need, err := h.rangeElems(uint64(len(dst)), start, count)
	if err != nil || need == 0 {
		return err
	}
	dst = dst[:need]
	return h.readRows(ctx, start, count, 8*int64(need), func(elemOff int, vals []float64) {
		copy(dst[elemOff:], vals)
	})
}

// ReadRows32 is ReadRows with float32 output: chunks decode on the
// float64 worker path and each element is narrowed at the copy into
// dst, mirroring DecompressStream32's width contract (narrowing adds at
// most a 2⁻²⁴ relative rounding step on top of the stream's bound).
func (h *StreamHandle) ReadRows32(dst []float32, start, count uint64) error {
	return h.ReadRows32Ctx(h.cfg.Ctx, dst, start, count)
}

// ReadRows32Ctx is ReadRows32 under a context.
func (h *StreamHandle) ReadRows32Ctx(ctx context.Context, dst []float32, start, count uint64) (err error) {
	defer recoverDecode(&err)
	need, err := h.rangeElems(uint64(len(dst)), start, count)
	if err != nil || need == 0 {
		return err
	}
	dst = dst[:need]
	return h.readRows(ctx, start, count, 4*int64(need), func(elemOff int, vals []float64) {
		for i, v := range vals {
			dst[elemOff+i] = float32(v)
		}
	})
}

// rangeElems validates a row range against the field geometry and the
// destination capacity, returning the element count it covers.
func (h *StreamHandle) rangeElems(dstLen, start, count uint64) (uint64, error) {
	rows := h.Rows()
	if start > rows || count > rows-start {
		return 0, fmt.Errorf("repro: row range [%d,+%d) outside the stream's %d rows", start, count, rows)
	}
	need := count * uint64(h.RowStride())
	if dstLen < need {
		return 0, fmt.Errorf("repro: destination holds %d elements, range needs %d", dstLen, need)
	}
	return need, nil
}

// seekJob carries one fetched chunk frame to the decode workers.
type seekJob struct {
	seq int
	in  []byte // CRC-verified payload (aliases buf)
	buf []byte // freelisted frame buffer
}

// readRows is the width-independent range-read pipeline: the calling
// goroutine seeks once and fetches the touched frames sequentially
// through an exact-extent LimitReader, a worker pool decodes them
// concurrently, and each worker copies its trimmed rows through emit
// into a disjoint region of the destination (so no ordering stage is
// needed). emit receives the destination element offset and the decoded
// values for [rowLo, rowHi) of the global range.
func (h *StreamHandle) readRows(ctx context.Context, start, count uint64, outBytes int64, emit func(elemOff int, vals []float64)) error {
	ctx = orDefault(ctx)
	if err := ctx.Err(); err != nil {
		return ctxCause(ctx)
	}
	hdr := &h.ix.Hdr
	stride := uint64(hdr.RowStride())
	chunkRows := uint64(hdr.ChunkRows)
	c0 := int(start / chunkRows)
	c1 := int((start+count-1)/chunkRows) + 1

	h.mu.Lock()
	defer h.mu.Unlock()

	off0, _ := h.ix.FrameExtent(c0)
	extent := h.ix.ExtentBytes(c0, c1)
	if _, err := h.src.Seek(off0, io.SeekStart); err != nil {
		return fmt.Errorf("repro: seeking chunk %d at offset %d: %w", c0, off0, err)
	}
	fr := h.ix.Frames(io.LimitReader(h.src, extent), c0, c1)

	workers := h.cfg.defaultWorkers()
	if h.cfg.Workers <= 0 && h.cfg.MemoryBudget > 0 {
		// Chunk geometry is the container's; the budget tempers the
		// decode pool width, exactly as on the forward decompress path.
		workers = budgetWorkersFor(h.cfg.MemoryBudget, hdr.ChunkRows*hdr.RowStride(), 8, workers)
	}
	if workers > c1-c0 {
		workers = c1 - c0
	}
	maxInFlight := workers + 2

	jobs := make(chan *seekJob)
	free := make(chan []byte, maxInFlight)
	stop := make(chan struct{})
	var fl inflight
	var codecNS atomic.Int64
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(stop)
		})
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				h.decodeOne(jb, start, count, stride, chunkRows, stop, &codecNS, emit, fail)
				select {
				case free <- jb.buf:
				default:
				}
				fl.leave()
			}
		}()
	}

	// Live frame buffers are bounded by the unbuffered jobs channel: at
	// most `workers` chunks decoding plus one blocked in the send, so the
	// freelist only recycles — the O(workers × chunk) invariant of the
	// forward pipeline holds for range reads too.
	var readWall time.Duration
	var repairBytes int64
	var damaged []int
	allocated := 0
	chunks := 0
	repaired := 0
	func() {
		defer close(jobs) // guaranteed even if a fetch step panics
	fetch:
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				fail(ctxCause(ctx))
				return
			default:
			}
			var buf []byte
			select {
			case buf = <-free:
			default:
			}
			t0 := time.Now()
			payload, frame, seq, err := fr.Next(buf)
			readWall += time.Since(t0)
			if err == io.EOF {
				break fetch
			}
			if err != nil {
				if errors.Is(err, streamfmt.ErrFrameDamaged) && h.ix.ParityK() > 0 {
					// Single-frame damage in a parity container: the
					// reader has already advanced past the bad frame, so
					// keep fetching and repair after the sequential pass.
					//lint:allow allochot repair bookkeeping only grows on damaged frames, never on clean reads
					damaged = append(damaged, seq)
					continue
				}
				fail(err)
				return
			}
			if cap(frame) > cap(buf) {
				allocated++ // the frame reader grew a fresh buffer
			}
			chunks++
			//lint:allow allochot per-chunk descriptor; live descriptors are bounded by the in-flight cap
			jb := &seekJob{seq: seq, in: payload, buf: frame}
			fl.enter()
			select {
			case jobs <- jb:
			case <-stop:
				fl.leave()
				return
			}
		}
		// The sequential fetch is done, so the source position is free
		// for repair seeks: reconstruct each damaged chunk from its
		// group's parity frame and siblings, and feed it to the same
		// decode pool.
		for _, seq := range damaged {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				fail(ctxCause(ctx))
				return
			default:
			}
			t0 := time.Now()
			payload, fetched, err := h.ix.RepairChunk(h.src, seq)
			readWall += time.Since(t0)
			repairBytes += fetched
			if err != nil {
				fail(fmt.Errorf("chunk %d: repair failed: %w", seq, err))
				return
			}
			chunks++
			repaired++
			//lint:allow allochot per-repair descriptor on the cold path
			jb := &seekJob{seq: seq, in: payload, buf: payload}
			fl.enter()
			select {
			case jobs <- jb:
			case <-stop:
				fl.leave()
				return
			}
		}
	}()
	wg.Wait()

	h.stats.Chunks += chunks
	h.stats.BytesIn += fr.BytesRead() + repairBytes
	h.stats.ReadWall += readWall
	h.stats.CodecWall += time.Duration(codecNS.Load())
	h.stats.BuffersAllocated += allocated
	h.stats.ParityFrames += fr.ParitySkipped()
	h.stats.RepairedChunks += repaired
	if m := int(fl.max.Load()); m > h.stats.MaxInFlight {
		h.stats.MaxInFlight = m
	}
	if firstErr != nil {
		return firstErr
	}
	h.stats.BytesOut += outBytes
	return nil
}

// decodeOne decompresses one fetched chunk, validates its shape against
// the container geometry, trims it to the requested row range, and
// emits the covered elements. Decode work is skipped (but the job still
// drained) once the pipeline has failed.
func (h *StreamHandle) decodeOne(jb *seekJob, start, count, stride, chunkRows uint64, stop chan struct{}, codecNS *atomic.Int64, emit func(elemOff int, vals []float64), fail func(error)) {
	select {
	case <-stop:
		return
	default:
	}
	hdr := &h.ix.Hdr
	rows := hdr.ChunkRowCount(jb.seq)
	t0 := time.Now()
	dec, subDims, err := Decompress(jb.in)
	codecNS.Add(time.Since(t0).Nanoseconds())
	if err == nil {
		if len(subDims) != len(hdr.Dims) || subDims[0] != rows || uint64(len(dec)) != uint64(rows)*stride {
			err = fmt.Errorf("%w: chunk %d decoded to shape %v, want %d rows of stride %d",
				ErrCorrupted, jb.seq, subDims, rows, stride)
		}
		for i := 1; err == nil && i < len(hdr.Dims); i++ {
			if subDims[i] != hdr.Dims[i] {
				err = fmt.Errorf("%w: chunk %d dims %v disagree with field %v", ErrCorrupted, jb.seq, subDims, hdr.Dims)
			}
		}
	}
	if err != nil {
		fail(fmt.Errorf("chunk %d: %w", jb.seq, err))
		return
	}
	chunkLo := uint64(jb.seq) * chunkRows
	gLo, gHi := chunkLo, chunkLo+uint64(rows)
	if start > gLo {
		gLo = start
	}
	if end := start + count; end < gHi {
		gHi = end
	}
	emit(int((gLo-start)*stride), dec[(gLo-chunkLo)*stride:(gHi-chunkLo)*stride])
}
