package repro

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/bitio"
)

// Archive bundles many named compressed fields into one stream with an
// index — the shape of a simulation snapshot (e.g. NYX's six fields or
// CESM-ATM's dozens) as one object. Fields are individually compressed
// (possibly with different algorithms and bounds) and individually
// retrievable without decoding the others.
//
// Three layouts exist. v1 (magic 0xC7) packs blobs back to back with
// only lengths in the directory, so offsets are implicit. v2 (magic
// 0xC9, what ArchiveWriter emits) records each blob's offset
// explicitly, directory up front:
//
//	archive := magic(0xC9) version(0x01) uvarint(count) entry*
//	           crc32be(blob area) blob area
//	entry   := uvarint(name len) name uvarint(offset) uvarint(blob len)
//
// with offsets relative to the start of the blob area. v3 (magic 0xCA,
// what ArchiveStreamWriter emits) moves the directory to the tail so
// blobs can stream to the sink as fields complete, before their sizes
// are known:
//
//	archive := magic(0xCA) version(0x01) blob area dir trailer
//	dir     := uvarint(count) entry*            // same entry grammar as v2
//	trailer := crc32be(dir) crc32be(blob area) u64be(dir len)
//
// OpenArchive reads all three, and validates v2/v3 directories
// structurally before touching any blob: every entry must lie inside
// the blob area and no two entries may overlap, so a crafted directory
// cannot alias one blob's bytes into another field or reach outside the
// container. OpenArchiveStream (archive_stream.go) reads the v3 layout
// off an io.ReadSeeker — trailer and directory only — and serves
// per-field seekable StreamHandles without touching sibling blobs.

const (
	archiveMagic   = 0xC7 // v1: implicit sequential offsets
	archiveMagicV2 = 0xC9 // v2: explicit per-entry offsets, directory first
	archiveMagicV3 = 0xCA // v3: explicit per-entry offsets, directory sealed at the tail
	archiveV2Ver   = 0x01
	archiveV3Ver   = 0x01

	// archiveV3TrailerLen is the fixed tail: directory CRC, blob-area
	// CRC, directory length.
	archiveV3TrailerLen = 4 + 4 + 8

	maxArchiveFields = 1 << 20
	maxFieldName     = 4096
)

// ArchiveWriter accumulates fields.
type ArchiveWriter struct {
	names []string
	blobs [][]byte
}

// NewArchiveWriter returns an empty archive builder.
func NewArchiveWriter() *ArchiveWriter { return &ArchiveWriter{} }

// AddCompressed adds an already-compressed stream under name. Names must
// be unique and non-empty.
func (w *ArchiveWriter) AddCompressed(name string, stream []byte) error {
	if name == "" || len(name) > maxFieldName {
		return fmt.Errorf("repro: invalid field name %q", name)
	}
	for _, n := range w.names {
		if n == name {
			return fmt.Errorf("repro: duplicate field %q", name)
		}
	}
	if !IsParallelStream(stream) && !IsStreamContainer(stream) {
		if _, err := AlgorithmOf(stream); err != nil {
			return fmt.Errorf("repro: field %q: %w", name, err)
		}
	}
	w.names = append(w.names, name)
	w.blobs = append(w.blobs, stream)
	return nil
}

// Add compresses data under a point-wise relative bound and adds it.
func (w *ArchiveWriter) Add(name string, data []float64, dims []int, relBound float64, algo Algorithm, opts *Options) error {
	buf, err := Compress(data, dims, relBound, algo, opts)
	if err != nil {
		return fmt.Errorf("repro: field %q: %w", name, err)
	}
	return w.AddCompressed(name, buf)
}

// Bytes serializes the archive in the v2 layout (explicit offsets,
// packed back to back).
func (w *ArchiveWriter) Bytes() []byte {
	out := []byte{archiveMagicV2, archiveV2Ver}
	out = bitio.AppendUvarint(out, uint64(len(w.names)))
	var off uint64
	for i, n := range w.names {
		out = bitio.AppendUvarint(out, uint64(len(n)))
		out = append(out, n...)
		out = bitio.AppendUvarint(out, off)
		out = bitio.AppendUvarint(out, uint64(len(w.blobs[i])))
		off += uint64(len(w.blobs[i]))
	}
	var crc uint32
	for _, b := range w.blobs {
		crc = crc32.Update(crc, crc32.IEEETable, b)
	}
	out = binary.BigEndian.AppendUint32(out, crc)
	for _, b := range w.blobs {
		out = append(out, b...)
	}
	return out
}

// ArchiveReader indexes an archive for random field access.
type ArchiveReader struct {
	names  []string
	blobs  [][]byte
	byName map[string][]byte
	limits *DecodeLimits
}

// OpenArchive parses an archive produced by ArchiveWriter.Bytes (v2) or
// by earlier versions of this package (v1).
func OpenArchive(buf []byte) (*ArchiveReader, error) {
	return OpenArchiveLimits(buf, nil)
}

// OpenArchiveLimits is OpenArchive with decode limits (nil = unlimited):
// MaxFields bounds the directory, MaxChunkBytes bounds each blob, and
// both are enforced while parsing the directory, before any blob-sized
// work. The limits are retained by the reader and applied again when
// Field decodes a blob.
func OpenArchiveLimits(buf []byte, limits *DecodeLimits) (_ *ArchiveReader, err error) {
	defer recoverDecode(&err)
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: %d-byte archive", ErrTruncated, len(buf))
	}
	switch buf[0] {
	case archiveMagic:
		return openArchiveV1(buf, limits)
	case archiveMagicV2:
		if buf[1] != archiveV2Ver {
			return nil, fmt.Errorf("%w: archive v2 version 0x%02x", ErrUnsupportedFormat, buf[1])
		}
		return openArchiveV2(buf, limits)
	case archiveMagicV3:
		if buf[1] != archiveV3Ver {
			return nil, fmt.Errorf("%w: archive v3 version 0x%02x", ErrUnsupportedFormat, buf[1])
		}
		return openArchiveV3(buf, limits)
	default:
		return nil, fmt.Errorf("%w: leading byte 0x%02x is not an archive", ErrUnsupportedFormat, buf[0])
	}
}

// readDirCount parses and sanity-bounds the directory count at buf[off:].
// minEntry is the smallest possible encoded directory entry, so a count
// beyond (remaining bytes)/minEntry is structurally impossible and is
// rejected before the count sizes any allocation.
func readDirCount(buf []byte, off, minEntry int, limits *DecodeLimits) (int, int, error) {
	count, k := bitio.Uvarint(buf[off:])
	if k == 0 || count > maxArchiveFields {
		return 0, 0, fmt.Errorf("%w: archive field count", ErrCorrupt)
	}
	off += k
	if count > uint64(len(buf)-off)/uint64(minEntry) {
		return 0, 0, fmt.Errorf("%w: %d fields declared in %d bytes", ErrCorrupt, count, len(buf)-off)
	}
	if err := limits.checkFields(int(count)); err != nil {
		return 0, 0, err
	}
	return int(count), off, nil
}

func openArchiveV1(buf []byte, limits *DecodeLimits) (*ArchiveReader, error) {
	count, off, err := readDirCount(buf, 1, 3, limits)
	if err != nil {
		return nil, err
	}
	r := &ArchiveReader{byName: make(map[string][]byte, count), limits: limits}
	lengths := make([]int, count)
	var total uint64
	for i := 0; i < count; i++ {
		nlen, k := bitio.Uvarint(buf[off:])
		if k == 0 || nlen == 0 || nlen > maxFieldName || nlen > uint64(len(buf)-off-k) {
			return nil, fmt.Errorf("%w: archive entry %d name", ErrCorrupt, i)
		}
		off += k
		name := string(buf[off : off+int(nlen)])
		off += int(nlen)
		blen, k := bitio.Uvarint(buf[off:])
		if k == 0 || blen > uint64(len(buf)) {
			return nil, fmt.Errorf("%w: archive entry %d length", ErrCorrupt, i)
		}
		if err := limits.checkChunkBytes(int64(blen)); err != nil {
			return nil, err
		}
		off += k
		if _, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrCorrupt, name)
		}
		r.names = append(r.names, name)
		r.byName[name] = nil
		lengths[i] = int(blen)
		total += blen
	}
	if off+4 > len(buf) {
		return nil, fmt.Errorf("%w (archive checksum)", ErrTruncated)
	}
	wantCRC := binary.BigEndian.Uint32(buf[off:])
	off += 4
	if total > uint64(len(buf)-off) {
		return nil, fmt.Errorf("%w: blobs overrun the archive", ErrTruncated)
	}
	start := off
	for i := 0; i < count; i++ {
		blob := buf[off : off+lengths[i]]
		r.blobs = append(r.blobs, blob)
		r.byName[r.names[i]] = blob
		off += lengths[i]
	}
	if crc32.ChecksumIEEE(buf[start:off]) != wantCRC {
		return nil, fmt.Errorf("%w: archive checksum mismatch", ErrCorrupt)
	}
	return r, nil
}

// dirEntry is one parsed v2/v3 directory entry: a field name plus its
// blob extent, offset relative to the blob-area start.
type dirEntry struct {
	name     string
	off, len uint64
}

// parseDirEntries parses count explicit-offset entries (the shared
// v2/v3 entry grammar) at buf[off:], enforcing name bounds, uniqueness,
// and MaxChunkBytes per blob. extentCap is the largest plausible blob
// offset or length — the container size — rejecting absurd values
// before validateExtents proves the precise geometry. It returns the
// entries and the offset just past the directory.
func parseDirEntries(buf []byte, off, count int, extentCap uint64, limits *DecodeLimits) ([]dirEntry, int, error) {
	entries := make([]dirEntry, count)
	seen := make(map[string]bool, count)
	for i := 0; i < count; i++ {
		nlen, k := bitio.Uvarint(buf[off:])
		if k == 0 || nlen == 0 || nlen > maxFieldName || nlen > uint64(len(buf)-off-k) {
			return nil, 0, fmt.Errorf("%w: archive entry %d name", ErrCorrupt, i)
		}
		off += k
		name := string(buf[off : off+int(nlen)])
		off += int(nlen)
		boff, k := bitio.Uvarint(buf[off:])
		if k == 0 || boff > extentCap {
			return nil, 0, fmt.Errorf("%w: archive entry %d offset", ErrCorrupt, i)
		}
		off += k
		blen, k := bitio.Uvarint(buf[off:])
		if k == 0 || blen > extentCap {
			return nil, 0, fmt.Errorf("%w: archive entry %d length", ErrCorrupt, i)
		}
		if err := limits.checkChunkBytes(int64(blen)); err != nil {
			return nil, 0, err
		}
		off += k
		if seen[name] {
			return nil, 0, fmt.Errorf("%w: duplicate field %q", ErrCorrupt, name)
		}
		seen[name] = true
		entries[i] = dirEntry{name: name, off: boff, len: blen}
	}
	return entries, off, nil
}

// validateExtents proves a parsed directory is geometrically honest:
// every entry lies inside the areaSize-byte blob area and no two
// entries overlap — a directory aliasing two fields onto the same bytes
// or reaching outside the container is forged, not damaged.
func validateExtents(entries []dirEntry, areaSize uint64) error {
	for i := range entries {
		hi := entries[i].off + entries[i].len
		if hi > areaSize || hi < entries[i].off {
			return fmt.Errorf("%w: field %q at [%d,%d) outside the %d-byte blob area",
				ErrCorrupt, entries[i].name, entries[i].off, hi, areaSize)
		}
	}
	sorted := append([]dirEntry(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].off < sorted[b].off })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].off < sorted[i-1].off+sorted[i-1].len {
			return fmt.Errorf("%w: fields %q and %q overlap in the blob area",
				ErrCorrupt, sorted[i-1].name, sorted[i].name)
		}
	}
	return nil
}

// newArchiveReader builds a reader over a validated blob area.
func newArchiveReader(entries []dirEntry, area []byte, limits *DecodeLimits) *ArchiveReader {
	r := &ArchiveReader{byName: make(map[string][]byte, len(entries)), limits: limits}
	for _, e := range entries {
		blob := area[e.off : e.off+e.len]
		r.names = append(r.names, e.name)
		r.blobs = append(r.blobs, blob)
		r.byName[e.name] = blob
	}
	return r
}

func openArchiveV2(buf []byte, limits *DecodeLimits) (*ArchiveReader, error) {
	count, off, err := readDirCount(buf, 2, 4, limits)
	if err != nil {
		return nil, err
	}
	entries, off, err := parseDirEntries(buf, off, count, uint64(len(buf)), limits)
	if err != nil {
		return nil, err
	}
	if off+4 > len(buf) {
		return nil, fmt.Errorf("%w (archive checksum)", ErrTruncated)
	}
	wantCRC := binary.BigEndian.Uint32(buf[off:])
	off += 4
	area := buf[off:]
	if err := validateExtents(entries, uint64(len(area))); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(area) != wantCRC {
		return nil, fmt.Errorf("%w: archive checksum mismatch", ErrCorrupt)
	}
	return newArchiveReader(entries, area, limits), nil
}

// openArchiveV3 parses the tail-directory layout from a full in-memory
// buffer, verifying both trailer CRCs (directory and blob area) before
// any blob is served — the whole-container trust model of v1/v2. The
// random-access path over the same layout is OpenArchiveStream, which
// verifies the directory CRC only and leans on the per-chunk CRCs of
// the stream containers inside.
func openArchiveV3(buf []byte, limits *DecodeLimits) (*ArchiveReader, error) {
	entries, area, err := parseArchiveV3(buf, limits, true)
	if err != nil {
		return nil, err
	}
	return newArchiveReader(entries, area, limits), nil
}

// parseArchiveV3 locates and verifies a v3 trailer + directory in buf
// (magic and version already checked), returning the parsed entries and
// the blob area. checkBlobCRC selects the whole-area checksum pass.
func parseArchiveV3(buf []byte, limits *DecodeLimits, checkBlobCRC bool) ([]dirEntry, []byte, error) {
	// Smallest valid container: magic, version, empty directory (one
	// count byte), trailer.
	if len(buf) < 2+1+archiveV3TrailerLen {
		return nil, nil, fmt.Errorf("%w: %d-byte archive", ErrTruncated, len(buf))
	}
	trailer := buf[len(buf)-archiveV3TrailerLen:]
	dirCRC := binary.BigEndian.Uint32(trailer[0:])
	blobCRC := binary.BigEndian.Uint32(trailer[4:])
	dirLen := binary.BigEndian.Uint64(trailer[8:])
	if dirLen < 1 || dirLen > uint64(len(buf)-2-archiveV3TrailerLen) {
		return nil, nil, fmt.Errorf("%w: archive directory of %d bytes in a %d-byte container",
			ErrCorrupt, dirLen, len(buf))
	}
	dirOff := len(buf) - archiveV3TrailerLen - int(dirLen)
	dir := buf[dirOff : len(buf)-archiveV3TrailerLen]
	if crc32.ChecksumIEEE(dir) != dirCRC {
		return nil, nil, fmt.Errorf("%w: archive directory checksum mismatch", ErrCorrupt)
	}
	count, off, err := readDirCount(dir, 0, 4, limits)
	if err != nil {
		return nil, nil, err
	}
	entries, off, err := parseDirEntries(dir, off, count, uint64(len(buf)), limits)
	if err != nil {
		return nil, nil, err
	}
	if off != len(dir) {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes in the %d-entry archive directory",
			ErrCorrupt, len(dir)-off, count)
	}
	area := buf[2:dirOff]
	if err := validateExtents(entries, uint64(len(area))); err != nil {
		return nil, nil, err
	}
	if checkBlobCRC && crc32.ChecksumIEEE(area) != blobCRC {
		return nil, nil, fmt.Errorf("%w: archive checksum mismatch", ErrCorrupt)
	}
	return entries, area, nil
}

// Fields returns the field names in archive order.
func (r *ArchiveReader) Fields() []string {
	return append([]string(nil), r.names...)
}

// SortedFields returns the field names sorted lexicographically.
func (r *ArchiveReader) SortedFields() []string {
	out := r.Fields()
	sort.Strings(out)
	return out
}

// Raw returns the compressed stream of a field without decoding it.
func (r *ArchiveReader) Raw(name string) ([]byte, error) {
	blob, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("repro: no field %q in archive", name)
	}
	return blob, nil
}

// Field decompresses one field by name, under the limits the archive was
// opened with.
func (r *ArchiveReader) Field(name string) (_ []float64, _ []int, err error) {
	defer recoverDecode(&err)
	blob, err := r.Raw(name)
	if err != nil {
		return nil, nil, err
	}
	return DecompressAnyLimits(blob, r.limits)
}
