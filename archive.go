package repro

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/bitio"
)

// Archive bundles many named compressed fields into one stream with an
// index — the shape of a simulation snapshot (e.g. NYX's six fields or
// CESM-ATM's dozens) as one object. Fields are individually compressed
// (possibly with different algorithms and bounds) and individually
// retrievable without decoding the others.
//
// Two layouts exist. v1 (magic 0xC7) packs blobs back to back with only
// lengths in the directory, so offsets are implicit. v2 (magic 0xC9,
// what ArchiveWriter now emits) records each blob's offset explicitly:
//
//	archive := magic(0xC9) version(0x01) uvarint(count) entry*
//	           crc32be(blob area) blob area
//	entry   := uvarint(name len) name uvarint(offset) uvarint(blob len)
//
// with offsets relative to the start of the blob area. OpenArchive reads
// both, and validates v2 directories structurally before touching any
// blob: every entry must lie inside the blob area and no two entries may
// overlap, so a crafted directory cannot alias one blob's bytes into
// another field or reach outside the container.

const (
	archiveMagic   = 0xC7 // v1: implicit sequential offsets
	archiveMagicV2 = 0xC9 // v2: explicit per-entry offsets
	archiveV2Ver   = 0x01

	maxArchiveFields = 1 << 20
	maxFieldName     = 4096
)

// ArchiveWriter accumulates fields.
type ArchiveWriter struct {
	names []string
	blobs [][]byte
}

// NewArchiveWriter returns an empty archive builder.
func NewArchiveWriter() *ArchiveWriter { return &ArchiveWriter{} }

// AddCompressed adds an already-compressed stream under name. Names must
// be unique and non-empty.
func (w *ArchiveWriter) AddCompressed(name string, stream []byte) error {
	if name == "" || len(name) > maxFieldName {
		return fmt.Errorf("repro: invalid field name %q", name)
	}
	for _, n := range w.names {
		if n == name {
			return fmt.Errorf("repro: duplicate field %q", name)
		}
	}
	if !IsParallelStream(stream) && !IsStreamContainer(stream) {
		if _, err := AlgorithmOf(stream); err != nil {
			return fmt.Errorf("repro: field %q: %w", name, err)
		}
	}
	w.names = append(w.names, name)
	w.blobs = append(w.blobs, stream)
	return nil
}

// Add compresses data under a point-wise relative bound and adds it.
func (w *ArchiveWriter) Add(name string, data []float64, dims []int, relBound float64, algo Algorithm, opts *Options) error {
	buf, err := Compress(data, dims, relBound, algo, opts)
	if err != nil {
		return fmt.Errorf("repro: field %q: %w", name, err)
	}
	return w.AddCompressed(name, buf)
}

// Bytes serializes the archive in the v2 layout (explicit offsets,
// packed back to back).
func (w *ArchiveWriter) Bytes() []byte {
	out := []byte{archiveMagicV2, archiveV2Ver}
	out = bitio.AppendUvarint(out, uint64(len(w.names)))
	var off uint64
	for i, n := range w.names {
		out = bitio.AppendUvarint(out, uint64(len(n)))
		out = append(out, n...)
		out = bitio.AppendUvarint(out, off)
		out = bitio.AppendUvarint(out, uint64(len(w.blobs[i])))
		off += uint64(len(w.blobs[i]))
	}
	var crc uint32
	for _, b := range w.blobs {
		crc = crc32.Update(crc, crc32.IEEETable, b)
	}
	out = binary.BigEndian.AppendUint32(out, crc)
	for _, b := range w.blobs {
		out = append(out, b...)
	}
	return out
}

// ArchiveReader indexes an archive for random field access.
type ArchiveReader struct {
	names  []string
	blobs  [][]byte
	byName map[string][]byte
	limits *DecodeLimits
}

// OpenArchive parses an archive produced by ArchiveWriter.Bytes (v2) or
// by earlier versions of this package (v1).
func OpenArchive(buf []byte) (*ArchiveReader, error) {
	return OpenArchiveLimits(buf, nil)
}

// OpenArchiveLimits is OpenArchive with decode limits (nil = unlimited):
// MaxFields bounds the directory, MaxChunkBytes bounds each blob, and
// both are enforced while parsing the directory, before any blob-sized
// work. The limits are retained by the reader and applied again when
// Field decodes a blob.
func OpenArchiveLimits(buf []byte, limits *DecodeLimits) (_ *ArchiveReader, err error) {
	defer recoverDecode(&err)
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: %d-byte archive", ErrTruncated, len(buf))
	}
	switch buf[0] {
	case archiveMagic:
		return openArchiveV1(buf, limits)
	case archiveMagicV2:
		if buf[1] != archiveV2Ver {
			return nil, fmt.Errorf("%w: archive v2 version 0x%02x", ErrUnsupportedFormat, buf[1])
		}
		return openArchiveV2(buf, limits)
	default:
		return nil, fmt.Errorf("%w: leading byte 0x%02x is not an archive", ErrUnsupportedFormat, buf[0])
	}
}

// readDirCount parses and sanity-bounds the directory count at buf[off:].
// minEntry is the smallest possible encoded directory entry, so a count
// beyond (remaining bytes)/minEntry is structurally impossible and is
// rejected before the count sizes any allocation.
func readDirCount(buf []byte, off, minEntry int, limits *DecodeLimits) (int, int, error) {
	count, k := bitio.Uvarint(buf[off:])
	if k == 0 || count > maxArchiveFields {
		return 0, 0, fmt.Errorf("%w: archive field count", ErrCorrupt)
	}
	off += k
	if count > uint64(len(buf)-off)/uint64(minEntry) {
		return 0, 0, fmt.Errorf("%w: %d fields declared in %d bytes", ErrCorrupt, count, len(buf)-off)
	}
	if err := limits.checkFields(int(count)); err != nil {
		return 0, 0, err
	}
	return int(count), off, nil
}

func openArchiveV1(buf []byte, limits *DecodeLimits) (*ArchiveReader, error) {
	count, off, err := readDirCount(buf, 1, 3, limits)
	if err != nil {
		return nil, err
	}
	r := &ArchiveReader{byName: make(map[string][]byte, count), limits: limits}
	lengths := make([]int, count)
	var total uint64
	for i := 0; i < count; i++ {
		nlen, k := bitio.Uvarint(buf[off:])
		if k == 0 || nlen == 0 || nlen > maxFieldName || nlen > uint64(len(buf)-off-k) {
			return nil, fmt.Errorf("%w: archive entry %d name", ErrCorrupt, i)
		}
		off += k
		name := string(buf[off : off+int(nlen)])
		off += int(nlen)
		blen, k := bitio.Uvarint(buf[off:])
		if k == 0 || blen > uint64(len(buf)) {
			return nil, fmt.Errorf("%w: archive entry %d length", ErrCorrupt, i)
		}
		if err := limits.checkChunkBytes(int64(blen)); err != nil {
			return nil, err
		}
		off += k
		if _, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrCorrupt, name)
		}
		r.names = append(r.names, name)
		r.byName[name] = nil
		lengths[i] = int(blen)
		total += blen
	}
	if off+4 > len(buf) {
		return nil, fmt.Errorf("%w (archive checksum)", ErrTruncated)
	}
	wantCRC := binary.BigEndian.Uint32(buf[off:])
	off += 4
	if total > uint64(len(buf)-off) {
		return nil, fmt.Errorf("%w: blobs overrun the archive", ErrTruncated)
	}
	start := off
	for i := 0; i < count; i++ {
		blob := buf[off : off+lengths[i]]
		r.blobs = append(r.blobs, blob)
		r.byName[r.names[i]] = blob
		off += lengths[i]
	}
	if crc32.ChecksumIEEE(buf[start:off]) != wantCRC {
		return nil, fmt.Errorf("%w: archive checksum mismatch", ErrCorrupt)
	}
	return r, nil
}

func openArchiveV2(buf []byte, limits *DecodeLimits) (*ArchiveReader, error) {
	count, off, err := readDirCount(buf, 2, 4, limits)
	if err != nil {
		return nil, err
	}
	r := &ArchiveReader{byName: make(map[string][]byte, count), limits: limits}
	type extent struct {
		lo, hi uint64
		name   string
	}
	extents := make([]extent, count)
	offsets := make([]uint64, count)
	lengths := make([]uint64, count)
	for i := 0; i < count; i++ {
		nlen, k := bitio.Uvarint(buf[off:])
		if k == 0 || nlen == 0 || nlen > maxFieldName || nlen > uint64(len(buf)-off-k) {
			return nil, fmt.Errorf("%w: archive entry %d name", ErrCorrupt, i)
		}
		off += k
		name := string(buf[off : off+int(nlen)])
		off += int(nlen)
		boff, k := bitio.Uvarint(buf[off:])
		if k == 0 || boff > uint64(len(buf)) {
			return nil, fmt.Errorf("%w: archive entry %d offset", ErrCorrupt, i)
		}
		off += k
		blen, k := bitio.Uvarint(buf[off:])
		if k == 0 || blen > uint64(len(buf)) {
			return nil, fmt.Errorf("%w: archive entry %d length", ErrCorrupt, i)
		}
		if err := limits.checkChunkBytes(int64(blen)); err != nil {
			return nil, err
		}
		off += k
		if _, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrCorrupt, name)
		}
		r.names = append(r.names, name)
		r.byName[name] = nil
		offsets[i], lengths[i] = boff, blen
		extents[i] = extent{boff, boff + blen, name}
	}
	if off+4 > len(buf) {
		return nil, fmt.Errorf("%w (archive checksum)", ErrTruncated)
	}
	wantCRC := binary.BigEndian.Uint32(buf[off:])
	off += 4
	area := buf[off:]
	// Every entry must lie inside the blob area…
	for i := range extents {
		if extents[i].hi > uint64(len(area)) || extents[i].hi < extents[i].lo {
			return nil, fmt.Errorf("%w: field %q at [%d,%d) outside the %d-byte blob area",
				ErrCorrupt, extents[i].name, extents[i].lo, extents[i].hi, len(area))
		}
	}
	// …and no two entries may overlap: a directory aliasing two fields
	// onto the same bytes is forged, not damaged.
	sorted := append([]extent(nil), extents...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].lo < sorted[b].lo })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].lo < sorted[i-1].hi {
			return nil, fmt.Errorf("%w: fields %q and %q overlap in the blob area",
				ErrCorrupt, sorted[i-1].name, sorted[i].name)
		}
	}
	if crc32.ChecksumIEEE(area) != wantCRC {
		return nil, fmt.Errorf("%w: archive checksum mismatch", ErrCorrupt)
	}
	for i := 0; i < count; i++ {
		blob := area[offsets[i] : offsets[i]+lengths[i]]
		r.blobs = append(r.blobs, blob)
		r.byName[r.names[i]] = blob
	}
	return r, nil
}

// Fields returns the field names in archive order.
func (r *ArchiveReader) Fields() []string {
	return append([]string(nil), r.names...)
}

// SortedFields returns the field names sorted lexicographically.
func (r *ArchiveReader) SortedFields() []string {
	out := r.Fields()
	sort.Strings(out)
	return out
}

// Raw returns the compressed stream of a field without decoding it.
func (r *ArchiveReader) Raw(name string) ([]byte, error) {
	blob, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("repro: no field %q in archive", name)
	}
	return blob, nil
}

// Field decompresses one field by name, under the limits the archive was
// opened with.
func (r *ArchiveReader) Field(name string) (_ []float64, _ []int, err error) {
	defer recoverDecode(&err)
	blob, err := r.Raw(name)
	if err != nil {
		return nil, nil, err
	}
	return DecompressAnyLimits(blob, r.limits)
}
