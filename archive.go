package repro

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/bitio"
)

// Archive bundles many named compressed fields into one stream with an
// index — the shape of a simulation snapshot (e.g. NYX's six fields or
// CESM-ATM's dozens) as one object. Fields are individually compressed
// (possibly with different algorithms and bounds) and individually
// retrievable without decoding the others.
//
// Layout: magic | uvarint count | index entries | blobs.
// Each index entry: uvarint(name len) | name | uvarint(blob len).
// Each blob is a standard Compress/CompressAbs/CompressParallel stream.

const archiveMagic = 0xC7

// ArchiveWriter accumulates fields.
type ArchiveWriter struct {
	names []string
	blobs [][]byte
}

// NewArchiveWriter returns an empty archive builder.
func NewArchiveWriter() *ArchiveWriter { return &ArchiveWriter{} }

// AddCompressed adds an already-compressed stream under name. Names must
// be unique and non-empty.
func (w *ArchiveWriter) AddCompressed(name string, stream []byte) error {
	if name == "" || len(name) > 4096 {
		return fmt.Errorf("repro: invalid field name %q", name)
	}
	for _, n := range w.names {
		if n == name {
			return fmt.Errorf("repro: duplicate field %q", name)
		}
	}
	if !IsParallelStream(stream) && !IsStreamContainer(stream) {
		if _, err := AlgorithmOf(stream); err != nil {
			return fmt.Errorf("repro: field %q: %w", name, err)
		}
	}
	w.names = append(w.names, name)
	w.blobs = append(w.blobs, stream)
	return nil
}

// Add compresses data under a point-wise relative bound and adds it.
func (w *ArchiveWriter) Add(name string, data []float64, dims []int, relBound float64, algo Algorithm, opts *Options) error {
	buf, err := Compress(data, dims, relBound, algo, opts)
	if err != nil {
		return fmt.Errorf("repro: field %q: %w", name, err)
	}
	return w.AddCompressed(name, buf)
}

// Bytes serializes the archive.
func (w *ArchiveWriter) Bytes() []byte {
	out := []byte{archiveMagic}
	out = bitio.AppendUvarint(out, uint64(len(w.names)))
	for i, n := range w.names {
		out = bitio.AppendUvarint(out, uint64(len(n)))
		out = append(out, n...)
		out = bitio.AppendUvarint(out, uint64(len(w.blobs[i])))
	}
	var crc uint32
	for _, b := range w.blobs {
		crc = crc32.Update(crc, crc32.IEEETable, b)
	}
	out = binary.BigEndian.AppendUint32(out, crc)
	for _, b := range w.blobs {
		out = append(out, b...)
	}
	return out
}

// ArchiveReader indexes an archive for random field access.
type ArchiveReader struct {
	names  []string
	blobs  [][]byte
	byName map[string][]byte
}

// OpenArchive parses an archive produced by ArchiveWriter.Bytes.
func OpenArchive(buf []byte) (*ArchiveReader, error) {
	if len(buf) < 2 || buf[0] != archiveMagic {
		return nil, ErrCorrupt
	}
	off := 1
	count, k := bitio.Uvarint(buf[off:])
	if k == 0 || count > 1<<20 {
		return nil, ErrCorrupt
	}
	off += k
	r := &ArchiveReader{byName: make(map[string][]byte, count)}
	lengths := make([]int, count)
	var total uint64
	for i := uint64(0); i < count; i++ {
		nlen, k := bitio.Uvarint(buf[off:])
		if k == 0 || nlen == 0 || nlen > 4096 || int(nlen) > len(buf)-off-k {
			return nil, ErrCorrupt
		}
		off += k
		name := string(buf[off : off+int(nlen)])
		off += int(nlen)
		blen, k := bitio.Uvarint(buf[off:])
		if k == 0 || blen > uint64(len(buf)) {
			return nil, ErrCorrupt
		}
		off += k
		if _, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrCorrupt, name)
		}
		r.names = append(r.names, name)
		r.byName[name] = nil
		lengths[i] = int(blen)
		total += blen
	}
	if off+4 > len(buf) {
		return nil, ErrCorrupt
	}
	wantCRC := binary.BigEndian.Uint32(buf[off:])
	off += 4
	if total > uint64(len(buf)-off) {
		return nil, ErrCorrupt
	}
	var crc uint32
	start := off
	for i := uint64(0); i < count; i++ {
		blob := buf[off : off+lengths[i]]
		r.blobs = append(r.blobs, blob)
		r.byName[r.names[i]] = blob
		off += lengths[i]
	}
	crc = crc32.ChecksumIEEE(buf[start:off])
	if crc != wantCRC {
		return nil, fmt.Errorf("%w: archive checksum mismatch", ErrCorrupt)
	}
	return r, nil
}

// Fields returns the field names in archive order.
func (r *ArchiveReader) Fields() []string {
	return append([]string(nil), r.names...)
}

// SortedFields returns the field names sorted lexicographically.
func (r *ArchiveReader) SortedFields() []string {
	out := r.Fields()
	sort.Strings(out)
	return out
}

// Raw returns the compressed stream of a field without decoding it.
func (r *ArchiveReader) Raw(name string) ([]byte, error) {
	blob, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("repro: no field %q in archive", name)
	}
	return blob, nil
}

// Field decompresses one field by name.
func (r *ArchiveReader) Field(name string) ([]float64, []int, error) {
	blob, err := r.Raw(name)
	if err != nil {
		return nil, nil, err
	}
	return DecompressAny(blob)
}
