package repro_test

// Golden-stream regression tests: small compressed fixtures committed
// under testdata/golden/ — one per algorithm, plus the parallel and
// stream containers — decoded against a recorded CRC of the
// reconstruction. Accidental format drift (a container or entropy-coder
// change that can no longer read old archives, or that silently decodes
// them differently) fails here in tier-1 instead of surfacing when a
// real archive is reopened.
//
// Regenerate after an INTENTIONAL format change with:
//
//	go test -run TestGoldenDecode -update-golden .
//
// and commit the new fixtures together with the change that required
// them.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/datagen"
	"repro/internal/streamfmt"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden fixtures")

const goldenDir = "testdata/golden"

// goldenField is the deterministic source field every fixture encodes:
// NYX dark-matter density, 8^3, fixed seed.
func goldenField() datagen.Field {
	return datagen.NYX(8, 424242)[0]
}

// goldenCase describes one fixture.
type goldenCase struct {
	name string
	make func(f datagen.Field) ([]byte, error)
}

func goldenCases() []goldenCase {
	cases := []goldenCase{}
	for _, algo := range repro.RelativeAlgorithms() {
		algo := algo
		cases = append(cases, goldenCase{
			name: strings.ToLower(algo.String()),
			make: func(f datagen.Field) ([]byte, error) {
				return repro.Compress(f.Data, f.Dims, 1e-2, algo, nil)
			},
		})
	}
	cases = append(cases,
		goldenCase{"sz_abs", func(f datagen.Field) ([]byte, error) {
			return repro.CompressAbs(f.Data, f.Dims, 0.01, repro.SZABS, nil)
		}},
		goldenCase{"zfp_acc", func(f datagen.Field) ([]byte, error) {
			return repro.CompressAbs(f.Data, f.Dims, 0.01, repro.ZFPACC, nil)
		}},
		goldenCase{"parallel", func(f datagen.Field) ([]byte, error) {
			return repro.CompressParallel(f.Data, f.Dims, 1e-2, repro.SZT, &repro.ParallelOptions{Chunks: 3})
		}},
		goldenCase{"stream", func(f datagen.Field) ([]byte, error) {
			var buf bytes.Buffer
			raw := make([]byte, len(f.Data)*8)
			for i, v := range f.Data {
				binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
			}
			_, err := repro.CompressStream(bytes.NewReader(raw), &buf, f.Dims, 1e-2, repro.SZT,
				&repro.StreamOptions{ChunkRows: 3})
			return buf.Bytes(), err
		}},
		goldenCase{"stream_parity", func(f datagen.Field) ([]byte, error) {
			var buf bytes.Buffer
			raw := make([]byte, len(f.Data)*8)
			for i, v := range f.Data {
				binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
			}
			_, err := repro.CompressStream(bytes.NewReader(raw), &buf, f.Dims, 1e-2, repro.SZT,
				&repro.StreamOptions{ChunkRows: 3, ParityK: 2})
			return buf.Bytes(), err
		}},
	)
	return cases
}

func decodedCRC(dec []float64) uint32 {
	h := crc32.NewIEEE()
	var b [8]byte
	for _, v := range dec {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, _ = h.Write(b[:]) // hash.Hash.Write never errors
	}
	return h.Sum32()
}

func manifestPath() string { return filepath.Join(goldenDir, "manifest.txt") }

func readManifest(t *testing.T) map[string]uint32 {
	t.Helper()
	f, err := os.Open(manifestPath())
	if err != nil {
		t.Fatalf("golden manifest missing (run with -update-golden to create): %v", err)
	}
	defer f.Close() //lint:allow errdrop read-only file; scanner errors are checked
	out := map[string]uint32{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var crc uint32
		if _, err := fmt.Sscanf(line, "%s %08x", &name, &crc); err != nil {
			t.Fatalf("bad manifest line %q: %v", line, err)
		}
		out[name] = crc
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenDecode is decode-only on the committed fixtures: every
// fixture must still parse, decode to the recorded reconstruction
// (CRC), and respect its bound against the deterministic source field.
func TestGoldenDecode(t *testing.T) {
	f := goldenField()
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		var manifest strings.Builder
		manifest.WriteString("# <fixture name> <crc32 of decoded little-endian float64 bytes>\n")
		manifest.WriteString("# regenerate: go test -run TestGoldenDecode -update-golden .\n")
		for _, c := range goldenCases() {
			buf, err := c.make(f)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if err := os.WriteFile(filepath.Join(goldenDir, c.name+".bin"), buf, 0o644); err != nil {
				t.Fatal(err)
			}
			dec, _, err := repro.DecompressAny(buf)
			if err != nil {
				t.Fatalf("%s: decode own fixture: %v", c.name, err)
			}
			fmt.Fprintf(&manifest, "%s %08x\n", c.name, decodedCRC(dec))
		}
		if err := os.WriteFile(manifestPath(), []byte(manifest.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %d fixtures under %s", len(goldenCases()), goldenDir)
	}

	want := readManifest(t)
	seen := map[string]bool{}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seen[c.name] = true
			wantCRC, ok := want[c.name]
			if !ok {
				t.Fatalf("fixture %s not in manifest (stale manifest? run -update-golden)", c.name)
			}
			buf, err := os.ReadFile(filepath.Join(goldenDir, c.name+".bin"))
			if err != nil {
				t.Fatalf("fixture missing: %v", err)
			}
			dec, dims, err := repro.DecompressAny(buf)
			if err != nil {
				t.Fatalf("format drift: committed fixture no longer decodes: %v", err)
			}
			if len(dec) != len(f.Data) || len(dims) != len(f.Dims) {
				t.Fatalf("decoded shape %v/%d, want %v/%d", dims, len(dec), f.Dims, len(f.Data))
			}
			if got := decodedCRC(dec); got != wantCRC {
				t.Fatalf("format drift: decoded CRC %08x, manifest says %08x", got, wantCRC)
			}
		})
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("manifest entry %s has no corresponding case (remove it or add the case)", name)
		}
	}
}

// TestGoldenSeekableRanges pins the seekable read path to the committed
// stream fixture: every range shape served by ReadRows must bit-match
// the corresponding slice of the manifest-verified full decode. Drift in
// the index-frame layout or the range→chunk mapping fails here against
// bytes written by the old code, not bytes written by the drifted code.
func TestGoldenSeekableRanges(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join(goldenDir, "stream.bin"))
	if err != nil {
		t.Fatalf("fixture missing (run -update-golden to create): %v", err)
	}
	full, dims, err := repro.DecompressAny(buf)
	if err != nil {
		t.Fatalf("stream fixture no longer decodes: %v", err)
	}
	if got, want := decodedCRC(full), readManifest(t)["stream"]; got != want {
		t.Fatalf("full decode CRC %08x, manifest says %08x", got, want)
	}

	h, err := repro.OpenStream(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("format drift: committed fixture no longer opens seekably: %v", err)
	}
	if int(h.Rows()) != dims[0] || h.Chunks() != 3 {
		t.Fatalf("fixture geometry drifted: rows=%d chunks=%d, want %d/3", h.Rows(), h.Chunks(), dims[0])
	}
	stride := uint64(h.RowStride())
	// The fixture is 8 rows chunked every 3: aligned, straddling, first,
	// last, full, and empty ranges all exercise distinct chunk mappings.
	goldenRangeSweep(t, h, full, stride)
}

func goldenRangeSweep(t *testing.T, h *repro.StreamHandle, full []float64, stride uint64) {
	t.Helper()
	for _, r := range [][2]uint64{{0, 3}, {3, 3}, {2, 4}, {0, 1}, {7, 1}, {0, 8}, {4, 0}} {
		start, count := r[0], r[1]
		dst := make([]float64, count*stride)
		if err := h.ReadRows(dst, start, count); err != nil {
			t.Fatalf("ReadRows[%d,+%d): %v", start, count, err)
		}
		for i := range dst {
			if want := full[start*stride+uint64(i)]; math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("ReadRows[%d,+%d) element %d = %x, full decode has %x",
					start, count, i, math.Float64bits(dst[i]), math.Float64bits(want))
			}
		}
	}
}

// TestGoldenParityRepair pins the v2 parity layout to bytes written by
// the committed code: the stream_parity fixture must decode to the
// manifest CRC, serve the same range sweep as the parity-free fixture,
// and — after losing any single data chunk — salvage back to the exact
// recorded reconstruction. Drift in the parity-frame interleave, the
// extended index grammar, or the XOR group math fails here against old
// bytes.
func TestGoldenParityRepair(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join(goldenDir, "stream_parity.bin"))
	if err != nil {
		t.Fatalf("fixture missing (run -update-golden to create): %v", err)
	}
	full, _, err := repro.DecompressAny(buf)
	if err != nil {
		t.Fatalf("parity fixture no longer decodes: %v", err)
	}
	wantCRC := readManifest(t)["stream_parity"]
	if got := decodedCRC(full); got != wantCRC {
		t.Fatalf("full decode CRC %08x, manifest says %08x", got, wantCRC)
	}

	h, err := repro.OpenStream(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("parity fixture no longer opens seekably: %v", err)
	}
	goldenRangeSweep(t, h, full, uint64(h.RowStride()))

	var clean bytes.Buffer
	if _, err := repro.DecompressStream(bytes.NewReader(buf), &clean); err != nil {
		t.Fatalf("sequential decode: %v", err)
	}
	rep, err := repro.DecompressStreamSalvage(bytes.NewReader(buf), io.Discard, nil)
	if err != nil || rep.Lost() != 0 {
		t.Fatalf("clean salvage: err %v, lost %v", err, rep.LostChunks)
	}
	scan, err := streamfmt.ScanSalvage(buf, streamfmt.Limits{})
	if err != nil || !scan.IndexOK || len(scan.Frames) != rep.Chunks {
		t.Fatalf("fixture scan: err %v, index %v, %d frames for %d chunks",
			err, scan.IndexOK, len(scan.Frames), rep.Chunks)
	}
	for c := 0; c < rep.Chunks; c++ {
		damaged := append([]byte(nil), buf...)
		damaged[(scan.Frames[c].Offset+scan.Frames[c].End)/2] ^= 0x20
		var out bytes.Buffer
		rep, err := repro.DecompressStreamSalvage(bytes.NewReader(damaged), &out, nil)
		if err != nil {
			t.Fatalf("chunk %d: salvage: %v", c, err)
		}
		if rep.Lost() != 0 || len(rep.RepairedChunks) != 1 || rep.RepairedChunks[0] != c {
			t.Fatalf("chunk %d: lost %v repaired %v, want clean single repair",
				c, rep.LostChunks, rep.RepairedChunks)
		}
		if !bytes.Equal(out.Bytes(), clean.Bytes()) {
			t.Fatalf("chunk %d: repaired output diverges from committed reconstruction", c)
		}
	}
}

// TestGoldenArchiveV3 pins the v3 streaming-archive layout (tail
// directory + trailer) to committed bytes. The fixture's two fields are
// written with the same chunking as the stream and stream_parity
// fixtures, so their decodes must match those manifest CRCs — drift in
// the v3 directory grammar, the extent lifting, or the section read
// path fails here against bytes written by the old code. Regenerated by
// the same -update-golden run as the rest.
func TestGoldenArchiveV3(t *testing.T) {
	path := filepath.Join(goldenDir, "archive_v3.bin")
	if *updateGolden {
		f := goldenField()
		raw := make([]byte, len(f.Data)*8)
		for i, v := range f.Data {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
		}
		var buf bytes.Buffer
		aw, err := repro.NewArchiveStreamWriter(&buf, repro.WithChunkRows(3))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := aw.AddField("density", bytes.NewReader(raw), f.Dims, 1e-2, repro.SZT); err != nil {
			t.Fatal(err)
		}
		if _, err := aw.AddField("density_parity", bytes.NewReader(raw), f.Dims, 1e-2, repro.SZT,
			repro.WithParity(2)); err != nil {
			t.Fatal(err)
		}
		if err := aw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("fixture missing (run -update-golden to create): %v", err)
	}
	manifest := readManifest(t)
	wantCRC := map[string]uint32{
		"density":        manifest["stream"],
		"density_parity": manifest["stream_parity"],
	}

	ar, err := repro.OpenArchive(buf)
	if err != nil {
		t.Fatalf("format drift: committed v3 archive no longer opens in-memory: %v", err)
	}
	as, err := repro.OpenArchiveStream(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("format drift: committed v3 archive no longer opens seekably: %v", err)
	}
	for name, want := range wantCRC {
		dec, dims, err := ar.Field(name)
		if err != nil {
			t.Fatalf("field %q no longer decodes in-memory: %v", name, err)
		}
		if got := decodedCRC(dec); got != want {
			t.Fatalf("field %q in-memory CRC %08x, manifest says %08x", name, got, want)
		}
		h, err := as.Field(name)
		if err != nil {
			t.Fatalf("field %q no longer opens seekably: %v", name, err)
		}
		if int(h.Rows()) != dims[0] {
			t.Fatalf("field %q geometry drifted: %d rows, want %d", name, h.Rows(), dims[0])
		}
		got := make([]float64, h.Rows()*uint64(h.RowStride()))
		if err := h.ReadRows(got, 0, h.Rows()); err != nil {
			t.Fatalf("field %q full-range read: %v", name, err)
		}
		if crc := decodedCRC(got); crc != want {
			t.Fatalf("field %q seekable CRC %08x, manifest says %08x", name, crc, want)
		}
		goldenRangeSweep(t, h, dec, uint64(h.RowStride()))
	}
}
