package repro

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/testutil"
)

// rawLE serializes a field as the raw little-endian float64 layout the
// streaming API reads and writes.
func rawLE(data []float64) []byte {
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return raw
}

func fromLE(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

// TestStreamRoundTrip pushes 1D/2D/3D fields through CompressStream and
// DecompressStream for every relative-bound algorithm and checks the
// advertised error guarantees survive the chunked pipeline.
func TestStreamRoundTrip(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields := []struct {
		name string
		dims []int
	}{
		{"1d", []int{600}},
		{"2d", []int{24, 32}},
		{"3d", []int{12, 10, 8}},
	}
	const rel = 1e-3
	for _, fc := range fields {
		n := 1
		for _, d := range fc.dims {
			n *= d
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = 50*math.Sin(float64(i)/9) + 75
		}
		raw := rawLE(data)
		for _, algo := range RelativeAlgorithms() {
			var comp bytes.Buffer
			st, err := CompressStream(bytes.NewReader(raw), &comp, fc.dims, rel, algo,
				&StreamOptions{Workers: 3, ChunkRows: (fc.dims[0] + 3) / 4})
			if err != nil {
				t.Fatalf("%s %v: compress: %v", fc.name, algo, err)
			}
			if st.BytesIn != int64(len(raw)) {
				t.Errorf("%s %v: BytesIn %d want %d", fc.name, algo, st.BytesIn, len(raw))
			}
			if st.BytesOut != int64(comp.Len()) {
				t.Errorf("%s %v: BytesOut %d want %d", fc.name, algo, st.BytesOut, comp.Len())
			}
			var dec bytes.Buffer
			dst, err := DecompressStream(bytes.NewReader(comp.Bytes()), &dec)
			if err != nil {
				t.Fatalf("%s %v: decompress: %v", fc.name, algo, err)
			}
			if dst.Chunks != st.Chunks {
				t.Errorf("%s %v: decoded %d chunks, encoded %d", fc.name, algo, dst.Chunks, st.Chunks)
			}
			got := fromLE(dec.Bytes())
			if len(got) != len(data) {
				t.Fatalf("%s %v: decoded %d values, want %d", fc.name, algo, len(got), len(data))
			}
			stats, err := metrics.RelError(data, got, rel)
			if err != nil {
				t.Fatal(err)
			}
			if algo == ZFPP {
				// ZFP_P does not guarantee the bound (the paper's "*").
				if stats.BoundedFrac < 0.5 {
					t.Errorf("%s %v: bounded only %.3f", fc.name, algo, stats.BoundedFrac)
				}
				continue
			}
			if stats.Max > rel*(1+1e-9) {
				t.Errorf("%s %v: max rel err %g > %g", fc.name, algo, stats.Max, rel)
			}
		}
	}
}

// TestStreamMatchesParallel asserts the acceptance criterion: for the
// same chunk boundaries, DecompressStream output is element-wise
// identical to Decompress of CompressParallel output.
func TestStreamMatchesParallel(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(16, 11)[0] // 16^3
	const rel = 1e-2
	// 16 rows into 4 chunks of 4: chunkStarts(16,4) gives 4-row chunks,
	// matching ChunkRows=4 exactly.
	pbuf, err := CompressParallel(f.Data, f.Dims, rel, SZT, &ParallelOptions{Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	pdec, pdims, err := DecompressParallel(pbuf, 0)
	if err != nil {
		t.Fatal(err)
	}
	var comp bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(f.Data)), &comp, f.Dims, rel, SZT,
		&StreamOptions{ChunkRows: 4}); err != nil {
		t.Fatal(err)
	}
	var dec bytes.Buffer
	if _, err := DecompressStream(bytes.NewReader(comp.Bytes()), &dec); err != nil {
		t.Fatal(err)
	}
	sdec := fromLE(dec.Bytes())
	if len(sdec) != len(pdec) {
		t.Fatalf("stream decoded %d values, parallel %d", len(sdec), len(pdec))
	}
	for i := range sdec {
		if !testutil.SameFloat(sdec[i], pdec[i]) {
			t.Fatalf("element %d differs: stream %g parallel %g", i, sdec[i], pdec[i])
		}
	}
	// And the one-shot path agrees with the streaming path.
	adec, adims, err := DecompressAny(comp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(adims) != len(pdims) {
		t.Fatalf("DecompressAny dims %v vs %v", adims, pdims)
	}
	for i := range adec {
		if !testutil.SameFloat(adec[i], sdec[i]) {
			t.Fatalf("DecompressAny element %d differs", i)
		}
	}
}

// TestStreamDeterministic asserts byte-identical container output across
// runs and worker counts (frames are emitted in field order regardless
// of completion order).
func TestStreamDeterministic(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(16, 3)[0]
	raw := rawLE(f.Data)
	var a, b bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(raw), &a, f.Dims, 1e-2, SZT, &StreamOptions{Workers: 4, ChunkRows: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := CompressStream(bytes.NewReader(raw), &b, f.Dims, 1e-2, SZT, &StreamOptions{Workers: 1, ChunkRows: 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("stream container depends on worker count")
	}
}

// TestStreamInputErrors covers compress-side failure modes: truncated
// input, bad geometry, absolute-bound algorithms, bad bounds.
func TestStreamInputErrors(t *testing.T) {
	defer testutil.NoLeak(t)()
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i + 1)
	}
	raw := rawLE(data)
	var sink bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(raw[:100]), &sink, []int{64}, 1e-2, SZT, nil); err == nil {
		t.Error("short input: want error")
	} else if !strings.Contains(err.Error(), "short stream input") {
		t.Errorf("short input: unexpected error %v", err)
	}
	if _, err := CompressStream(bytes.NewReader(raw), &sink, []int{0}, 1e-2, SZT, nil); err == nil {
		t.Error("zero dim: want error")
	}
	if _, err := CompressStream(bytes.NewReader(raw), &sink, []int{64}, 1e-2, SZABS, nil); err == nil {
		t.Error("absolute algo: want ErrNeedsAbsolute")
	}
	if _, err := CompressStream(bytes.NewReader(raw), &sink, []int{64}, 2.0, SZT, nil); err == nil {
		t.Error("bad bound: want error")
	}
	// A failing writer must abort the pipeline with an error, not hang.
	ew := &errAfterWriter{limit: 10}
	if _, err := CompressStream(bytes.NewReader(raw), ew, []int{64}, 1e-2, SZT, &StreamOptions{ChunkRows: 4}); err == nil {
		t.Error("failing sink: want error")
	}
}

type errAfterWriter struct{ limit, n int }

func (w *errAfterWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > w.limit {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

// TestStreamDecodeErrors covers decode-side robustness: truncations at
// every prefix length and single-byte corruption must error out (or
// decode consistently), never panic or hang.
func TestStreamDecodeErrors(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(8, 5)[0]
	var comp bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(f.Data)), &comp, f.Dims, 1e-2, SZT, &StreamOptions{ChunkRows: 2}); err != nil {
		t.Fatal(err)
	}
	stream := comp.Bytes()
	for cut := 0; cut < len(stream); cut += 7 {
		if _, err := DecompressStream(bytes.NewReader(stream[:cut]), io.Discard); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Flipping any byte must be caught by a CRC, a shape check, or the
	// inner decoder.
	for pos := 0; pos < len(stream); pos += 11 {
		mut := append([]byte(nil), stream...)
		mut[pos] ^= 0x4
		var out bytes.Buffer
		if _, err := DecompressStream(bytes.NewReader(mut), &out); err == nil {
			if !bytes.Equal(out.Bytes(), rawLEOfDecoded(t, stream)) {
				t.Fatalf("corruption at %d silently changed output", pos)
			}
		}
	}
}

func rawLEOfDecoded(t *testing.T, stream []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if _, err := DecompressStream(bytes.NewReader(stream), &out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// synthReader procedurally generates a raw float64 field without ever
// materializing it, so the bounded-memory test's input side is O(1).
type synthReader struct {
	remaining int64 // bytes left to produce
	i         int64 // absolute element index
}

func (s *synthReader) Read(p []byte) (int, error) {
	if s.remaining <= 0 {
		return 0, io.EOF
	}
	n := int64(len(p)) - int64(len(p))%8
	if n > s.remaining {
		n = s.remaining
	}
	if n == 0 {
		return 0, io.EOF
	}
	for off := int64(0); off < n; off += 8 {
		v := 40*math.Sin(float64(s.i)/17) + 90
		binary.LittleEndian.PutUint64(p[off:], math.Float64bits(v))
		s.i++
	}
	s.remaining -= n
	return int(n), nil
}

// TestStreamBoundedMemory streams a field 16× larger than the pipeline's
// chunk budget and asserts the bounded-memory invariant: the pipeline
// allocates at most workers+2 chunk buffers (the deterministic proof)
// and the sampled heap high-water mark stays far below the field size
// (the end-to-end check).
func TestStreamBoundedMemory(t *testing.T) {
	defer testutil.NoLeak(t)()
	const (
		rowStride = 4096 // floats per row: 32 KiB
		rows      = 1024 // field: 32 MiB
		chunkRows = 8    // chunk: 256 KiB
		workers   = 2
	)
	fieldBytes := int64(rows * rowStride * 8)
	budgetBytes := int64((workers + 2) * chunkRows * rowStride * 8)
	if fieldBytes < 8*budgetBytes {
		t.Fatalf("test geometry broken: field %d < 8x budget %d", fieldBytes, budgetBytes)
	}

	var heapMax uint64
	stopSampling := make(chan struct{})
	samplerDone := make(chan struct{})
	var base runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&base)
	go func() {
		defer close(samplerDone)
		var m runtime.MemStats
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > heapMax {
				heapMax = m.HeapAlloc
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	src := &synthReader{remaining: fieldBytes}
	cw := &countingWriter{w: io.Discard}
	st, err := CompressStream(src, cw, []int{rows, rowStride}, 1e-2, SZT,
		&StreamOptions{Workers: workers, ChunkRows: chunkRows})
	close(stopSampling)
	<-samplerDone
	if err != nil {
		t.Fatal(err)
	}

	if st.Chunks != rows/chunkRows {
		t.Errorf("chunks %d want %d", st.Chunks, rows/chunkRows)
	}
	if st.BytesIn != fieldBytes {
		t.Errorf("BytesIn %d want %d", st.BytesIn, fieldBytes)
	}
	if st.BuffersAllocated > workers+2 {
		t.Errorf("allocated %d chunk buffers, bound is workers+2 = %d", st.BuffersAllocated, workers+2)
	}
	if st.MaxInFlight > workers+2 {
		t.Errorf("max in-flight %d, bound is workers+2 = %d", st.MaxInFlight, workers+2)
	}
	resident := int64(st.BuffersAllocated) * chunkRows * rowStride * 8
	if resident > budgetBytes {
		t.Errorf("resident chunk-buffer bytes %d exceed budget %d", resident, budgetBytes)
	}
	if testutil.RaceEnabled {
		t.Log("race detector: skipping heap high-water assertion")
		return
	}
	growth := int64(heapMax) - int64(base.HeapAlloc)
	if growth > fieldBytes/2 {
		t.Errorf("heap grew by %d bytes streaming a %d-byte field; pipeline is not bounded-memory",
			growth, fieldBytes)
	}
	t.Logf("field %d MiB, heap high-water growth %d KiB, %d chunk buffers",
		fieldBytes>>20, growth>>10, st.BuffersAllocated)
}

// TestStreamStatsObservability sanity-checks the per-stage counters.
func TestStreamStatsObservability(t *testing.T) {
	defer testutil.NoLeak(t)()
	f := datagen.NYX(16, 9)[0]
	var comp bytes.Buffer
	st, err := CompressStream(bytes.NewReader(rawLE(f.Data)), &comp, f.Dims, 1e-2, SZT, &StreamOptions{ChunkRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 4 {
		t.Errorf("chunks %d want 4", st.Chunks)
	}
	if st.CodecWall <= 0 || st.MaxInFlight < 1 || st.BuffersAllocated < 1 {
		t.Errorf("implausible stats: %+v", st)
	}
	dst, err := DecompressStream(bytes.NewReader(comp.Bytes()), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if dst.BytesIn != int64(comp.Len()) {
		t.Errorf("decode BytesIn %d want %d", dst.BytesIn, comp.Len())
	}
	if dst.BytesOut != int64(len(f.Data)*8) {
		t.Errorf("decode BytesOut %d want %d", dst.BytesOut, len(f.Data)*8)
	}
}

// TestArchiveHoldsStreamContainer checks a stream container is a valid
// archive member and decodes through ArchiveReader.Field.
func TestArchiveHoldsStreamContainer(t *testing.T) {
	f := datagen.NYX(8, 13)[0]
	var comp bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(f.Data)), &comp, f.Dims, 1e-2, ZFPT, &StreamOptions{ChunkRows: 3}); err != nil {
		t.Fatal(err)
	}
	w := NewArchiveWriter()
	if err := w.AddCompressed("density", comp.Bytes()); err != nil {
		t.Fatal(err)
	}
	r, err := OpenArchive(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	dec, dims, err := r.Field("density")
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != len(f.Dims) || len(dec) != len(f.Data) {
		t.Fatalf("archived stream decoded to %v/%d values", dims, len(dec))
	}
	stats, err := metrics.RelError(f.Data, dec, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > 1e-2*(1+1e-9) {
		t.Errorf("bound violated through archive: %g", stats.Max)
	}
}
